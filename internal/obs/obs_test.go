package obs

import (
	"bytes"
	"fmt"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestCounterConcurrent(t *testing.T) {
	var c Counter
	const workers, perWorker = 16, 10_000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				c.Add(w, 1)
			}
		}(w)
	}
	wg.Wait()
	if got := c.Load(); got != workers*perWorker {
		t.Fatalf("Load()=%d want %d", got, workers*perWorker)
	}
	c.Add(-3, 5) // negative worker index must not panic
	if got := c.Load(); got != workers*perWorker+5 {
		t.Fatalf("Load()=%d want %d", got, workers*perWorker+5)
	}
}

func TestGauge(t *testing.T) {
	var g Gauge
	g.Set(42)
	g.Add(-2)
	if got := g.Load(); got != 40 {
		t.Fatalf("Load()=%d want 40", got)
	}
}

func TestTracerRingWrap(t *testing.T) {
	tr := NewTracer(4)
	for i := 1; i <= 10; i++ {
		tr.Record(EvCheckpointCommit, i, uint64(i), time.Duration(i), int64(i))
	}
	evs := tr.Events()
	if len(evs) != 4 {
		t.Fatalf("got %d events, want 4", len(evs))
	}
	for i, e := range evs {
		want := uint64(7 + i) // oldest surviving is seq 7
		if e.Seq != want || e.Epoch != want {
			t.Fatalf("event %d: seq=%d epoch=%d want %d", i, e.Seq, e.Epoch, want)
		}
	}
	var buf bytes.Buffer
	if err := tr.Dump(&buf); err != nil {
		t.Fatal(err)
	}
	if n := strings.Count(buf.String(), "checkpoint_commit"); n != 4 {
		t.Fatalf("dump has %d events, want 4:\n%s", n, buf.String())
	}
}

func TestTracerNilSafe(t *testing.T) {
	var tr *Tracer
	tr.Record(EvCoordRecord, 0, 1, 0, 0) // must not panic
	if evs := tr.Events(); evs != nil {
		t.Fatalf("nil tracer returned events: %v", evs)
	}
	if err := tr.Dump(&bytes.Buffer{}); err != nil {
		t.Fatal(err)
	}
}

func TestTracerConcurrent(t *testing.T) {
	tr := NewTracer(64)
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				tr.Record(EvJournalRelease, w, uint64(i), 0, 0)
			}
		}(w)
	}
	wg.Wait()
	evs := tr.Events()
	if len(evs) != 64 {
		t.Fatalf("got %d events, want 64", len(evs))
	}
	for i := 1; i < len(evs); i++ {
		if evs[i].Seq != evs[i-1].Seq+1 {
			t.Fatalf("non-contiguous seqs %d, %d", evs[i-1].Seq, evs[i].Seq)
		}
	}
}

func TestEventKindStrings(t *testing.T) {
	kinds := []EventKind{
		EvCheckpointPrepare, EvCheckpointCommit, EvCoordRecord,
		EvJournalRelease, EvRecoveryReplay, EvTxnReplay,
		EvSnapshotAnchor, EvReplicaApply, EvReplicaResync,
	}
	seen := make(map[string]bool)
	for _, k := range kinds {
		s := k.String()
		if strings.HasPrefix(s, "event(") || seen[s] {
			t.Fatalf("kind %d has bad or duplicate name %q", k, s)
		}
		seen[s] = true
	}
}

func buildTestRegistry() *Registry {
	r := NewRegistry()
	var ops Counter
	ops.Add(0, 10)
	r.Counter("incll_test_ops_total", "Operations applied.", Labels("op", "put"), ops.Load)
	r.Counter("incll_test_ops_total", "Operations applied.", Labels("op", "get"), func() int64 { return 3 })
	var lag Gauge
	lag.Set(2)
	r.Gauge("incll_test_lag_epochs", "Replica lag in epochs.", "", lag.Load)
	h := &Histogram{}
	for i := 0; i < 100; i++ {
		h.Record(int64(i) * 1_000)
	}
	r.Histogram("incll_test_stw_seconds", "Stop-the-world duration.", "", h, 1e-9)
	return r
}

func TestRegistryPrometheusOutput(t *testing.T) {
	var buf bytes.Buffer
	if err := buildTestRegistry().WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if err := CheckExposition(strings.NewReader(out)); err != nil {
		t.Fatalf("lint failed: %v\n%s", err, out)
	}
	exp, err := ParseExposition(strings.NewReader(out))
	if err != nil {
		t.Fatal(err)
	}
	if v, err := exp.Value("incll_test_ops_total", "op", "put"); err != nil || v != 10 {
		t.Fatalf("ops{op=put}=%v err=%v", v, err)
	}
	if v, err := exp.Value("incll_test_lag_epochs"); err != nil || v != 2 {
		t.Fatalf("lag=%v err=%v", v, err)
	}
	if v, err := exp.Value("incll_test_stw_seconds_count"); err != nil || v != 100 {
		t.Fatalf("stw count=%v err=%v", v, err)
	}
	if v, err := exp.Value("incll_test_stw_seconds_bucket", "le", "+Inf"); err != nil || v != 100 {
		t.Fatalf("stw +Inf=%v err=%v", v, err)
	}
	if exp.Types["incll_test_stw_seconds"] != "histogram" {
		t.Fatalf("TYPE map: %v", exp.Types)
	}
}

func TestRegistryDuplicatePanics(t *testing.T) {
	r := NewRegistry()
	r.Counter("x_total", "h", "", func() int64 { return 0 })
	mustPanic(t, "duplicate series", func() {
		r.Counter("x_total", "h", "", func() int64 { return 0 })
	})
	mustPanic(t, "kind clash", func() {
		r.Gauge("x_total", "h", Labels("a", "b"), func() int64 { return 0 })
	})
}

func mustPanic(t *testing.T, what string, f func()) {
	t.Helper()
	defer func() {
		if recover() == nil {
			t.Fatalf("%s: expected panic", what)
		}
	}()
	f()
}

func TestLintCatchesViolations(t *testing.T) {
	bad := map[string]string{
		"no-type":        "foo_total 1\n",
		"counter-suffix": "# TYPE foo counter\n# HELP foo h\nfoo 1\n",
		"dup-series":     "# TYPE foo gauge\nfoo 1\nfoo 2\n",
		"interleave":     "# TYPE a gauge\n# TYPE b gauge\na 1\nb 1\na{x=\"1\"} 2\n",
		"no-inf":         "# TYPE h histogram\nh_bucket{le=\"1\"} 1\nh_sum 1\nh_count 1\n",
		"bad-name":       "# TYPE 9x gauge\n9x 1\n",
		"bad-value":      "# TYPE foo gauge\nfoo abc\n",
		// A labeled family re-emitting HELP per label value: the classic
		// per-peer registration bug the HELP-count rule exists for.
		"dup-help": "# HELP g h\n# TYPE g gauge\n# HELP g h\ng{id=\"a\"} 1\ng{id=\"b\"} 2\n",
		// Series of one family disagreeing on label keys.
		"mixed-keys": "# HELP g h\n# TYPE g gauge\ng{a=\"x\",b=\"z\"} 1.5\ng 2\n",
		// The reserved le label outside a histogram bucket.
		"stray-le": "# HELP g h\n# TYPE g gauge\ng{le=\"1\"} 1\n",
	}
	for name, doc := range bad {
		if err := CheckExposition(strings.NewReader(doc)); err == nil {
			t.Errorf("%s: lint accepted bad exposition:\n%s", name, doc)
		}
	}
	good := "# HELP g h\n# TYPE g gauge\ng{a=\"x\\\"y\",b=\"z\"} 1.5\ng{a=\"q\",b=\"r\"} 2\n" +
		"# HELP s_seconds h\n# TYPE s_seconds histogram\n" +
		"s_seconds_bucket{id=\"p1\",le=\"1\"} 1\ns_seconds_bucket{id=\"p1\",le=\"+Inf\"} 1\n" +
		"s_seconds_sum{id=\"p1\"} 0.5\ns_seconds_count{id=\"p1\"} 1\n" +
		"s_seconds_bucket{id=\"p2\",le=\"1\"} 0\ns_seconds_bucket{id=\"p2\",le=\"+Inf\"} 0\n" +
		"s_seconds_sum{id=\"p2\"} 0\ns_seconds_count{id=\"p2\"} 0\n"
	if err := CheckExposition(strings.NewReader(good)); err != nil {
		t.Errorf("lint rejected good exposition: %v", err)
	}
}

func TestParseLabelEscapes(t *testing.T) {
	exp, err := ParseExposition(strings.NewReader(
		"# TYPE m gauge\nm{k=\"a\\\\b\\\"c\\nd\"} 7 1234567890\n"))
	if err != nil {
		t.Fatal(err)
	}
	if len(exp.Samples) != 1 {
		t.Fatalf("samples: %v", exp.Samples)
	}
	want := "a\\b\"c\nd"
	if got := exp.Samples[0].Labels["k"]; got != want {
		t.Fatalf("label k=%q want %q", got, want)
	}
	if exp.Samples[0].Value != 7 {
		t.Fatalf("value=%v", exp.Samples[0].Value)
	}
}

func TestLabelsHelper(t *testing.T) {
	if got := Labels("shard", "0", "op", `p"q`); got != `op="p\"q",shard="0"` {
		t.Fatalf("Labels: %q", got)
	}
	if got := Labels(); got != "" {
		t.Fatalf("Labels(): %q", got)
	}
}

func BenchmarkCounterAdd(b *testing.B) {
	var c Counter
	b.RunParallel(func(pb *testing.PB) {
		w := int(time.Now().UnixNano()) & 7
		for pb.Next() {
			c.Add(w, 1)
		}
	})
	_ = fmt.Sprint(c.Load())
}
