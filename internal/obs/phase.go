package obs

import (
	"sync/atomic"
	"time"
)

// Phase names one latency-attribution bucket: where a sampled operation's
// time went (see DESIGN.md §12). The String form is the `phase` label of
// the incll_phase_seconds series.
type Phase uint8

const (
	// PhaseDescent is the tree walk and leaf work of the operation itself
	// (the final, successful attempt; wasted attempts land in PhaseRetry).
	PhaseDescent Phase = iota
	// PhaseRetry is time thrown away by optimistic-read restarts: every
	// version-check failure charges the attempt it invalidated here.
	PhaseRetry
	// PhaseEpochWait is time waiting on a store's epoch world lock — the
	// reader side (an op's Enter while a checkpoint holds the world) and
	// the advancer side (Prepare waiting for readers to drain).
	PhaseEpochWait
	// PhaseGuardWait is time waiting on the transaction commit guard:
	// commits acquiring it shared, advances acquiring it exclusively.
	PhaseGuardWait
	// PhaseGuardHold is how long an advance holds the commit guard
	// exclusively (the window during which no commit can start).
	PhaseGuardHold
	// PhaseCommitLockWait is time a commit spends taking its per-shard
	// commit locks (plus the per-shard epoch guards behind them).
	PhaseCommitLockWait
	// PhaseFence is the duration of a persist fence: draining pending
	// writebacks plus the emulated NVM round trip (FenceDelay).
	PhaseFence
	// PhaseAlloc is value-heap/node allocation (alloc.Handle fast path,
	// including any wilderness refill it triggers).
	PhaseAlloc

	// NumPhases is the number of phases; valid Phase values are below it.
	NumPhases
)

var phaseNames = [NumPhases]string{
	"descent", "retry", "epoch_wait", "guard_wait",
	"guard_hold", "commit_lock_wait", "fence", "alloc",
}

func (p Phase) String() string {
	if p < NumPhases {
		return phaseNames[p]
	}
	return "unknown"
}

// DefaultPhaseSample is the default op-sampling period: one op in eight is
// phase-timed, matching the harness's latency sampling.
const DefaultPhaseSample = 8

// phaseBase anchors the timer's monotonic clock; marks are nanoseconds
// since it, so they fit an atomic int64 with 0 free as "no op in flight".
var phaseBase = time.Now()

func phaseNow() int64 {
	if n := int64(time.Since(phaseBase)); n > 0 {
		return n
	}
	return 1
}

// phaseSlot is one worker's lap timer, padded to a cache line. Both fields
// are atomics so that callers sharing a worker index (the facade's
// convenience API routes everything through worker 0) race benignly — a
// collision can misattribute one sample, never corrupt or trip the race
// detector.
type phaseSlot struct {
	ops  atomic.Int64 // op arrivals (the Begin sampling clock)
	coin atomic.Int64 // site-local arrivals (the Sampled clock)
	mark atomic.Int64 // lap start (ns since phaseBase); 0 = not sampling
	_    [40]byte
}

// PhaseSet is the sampled latency-attribution timer: per-worker lap clocks
// feeding one Histogram per Phase. One op in sampleEvery is timed; on a
// sampled op the instrumented path calls Lap at each phase boundary, which
// records the time since the previous boundary and restarts the clock, so
// the phases of one op sum to its wall time with no double counting.
//
// Every method is nil-safe (a nil *PhaseSet no-ops, like *Tracer), so the
// instrumented hot paths need no configuration flags. The unsampled cost
// of Begin is one uncontended atomic add and a mask test on the worker's
// own padded slot.
type PhaseSet struct {
	mask  int64 // sampleEvery-1 (power of two)
	every int
	hists [NumPhases]Histogram
	slots []phaseSlot
}

// NewPhaseSet builds a PhaseSet for the given worker count. sampleEvery is
// rounded up to a power of two; values < 1 take DefaultPhaseSample.
func NewPhaseSet(workers, sampleEvery int) *PhaseSet {
	if workers < 1 {
		workers = 1
	}
	if sampleEvery < 1 {
		sampleEvery = DefaultPhaseSample
	}
	every := 1
	for every < sampleEvery {
		every <<= 1
	}
	return &PhaseSet{
		mask:  int64(every - 1),
		every: every,
		slots: make([]phaseSlot, workers),
	}
}

// SampleEvery reports the (rounded) sampling period; 0 for a nil set.
func (p *PhaseSet) SampleEvery() int {
	if p == nil {
		return 0
	}
	return p.every
}

func (p *PhaseSet) slot(w int) *phaseSlot {
	return &p.slots[uint(w)%uint(len(p.slots))]
}

// Begin counts one op arrival on worker w and reports whether this op is
// sampled; if so the lap clock starts and the caller must finish with End.
func (p *PhaseSet) Begin(w int) bool {
	if p == nil {
		return false
	}
	s := p.slot(w)
	if s.ops.Add(1)&p.mask != 0 {
		return false
	}
	s.mark.Store(phaseNow())
	return true
}

// Lap records the time since worker w's last boundary into ph and restarts
// the clock. A no-op when no sampled op is in flight on w, so shared inner
// code (retry sites) may call it unconditionally.
func (p *PhaseSet) Lap(w int, ph Phase) {
	if p == nil {
		return
	}
	s := p.slot(w)
	m := s.mark.Load()
	if m == 0 {
		return
	}
	now := phaseNow()
	p.hists[ph].Record(now - m)
	s.mark.Store(now)
}

// End records the final lap into ph and stops worker w's clock.
func (p *PhaseSet) End(w int, ph Phase) {
	if p == nil {
		return
	}
	m := p.slot(w).mark.Swap(0)
	if m == 0 {
		return
	}
	p.hists[ph].Record(phaseNow() - m)
}

// Active reports whether a sampled op is in flight on worker w.
func (p *PhaseSet) Active(w int) bool {
	return p != nil && p.slot(w).mark.Load() != 0
}

// Sampled is an independent 1-in-sampleEvery coin for sites that time
// themselves (fence, alloc) rather than lapping an op's clock. Uses its
// own per-slot counter so it never perturbs Begin's sampling phase.
func (p *PhaseSet) Sampled(w int) bool {
	if p == nil {
		return false
	}
	return p.slot(w).coin.Add(1)&p.mask == 0
}

// Observe records a self-timed duration directly into ph (rare events —
// guard holds, fences — that are measured at their site).
func (p *PhaseSet) Observe(ph Phase, d time.Duration) {
	if p == nil {
		return
	}
	p.hists[ph].Record(int64(d))
}

// Hist returns ph's histogram (nanoseconds), or nil for a nil set.
func (p *PhaseSet) Hist(ph Phase) *Histogram {
	if p == nil {
		return nil
	}
	return &p.hists[ph]
}

// Snapshot summarizes every phase histogram, keyed by phase name.
func (p *PhaseSet) Snapshot() map[string]HistSnapshot {
	if p == nil {
		return nil
	}
	out := make(map[string]HistSnapshot, NumPhases)
	for ph := Phase(0); ph < NumPhases; ph++ {
		out[ph.String()] = p.hists[ph].Snapshot()
	}
	return out
}
