package obs

import (
	"sort"
	"sync"
	"time"
)

// Epoch propagation tracing (see DESIGN.md §15): every released epoch's
// lifecycle is stamped on the primary's own clock as it moves through the
// replication pipeline —
//
//	checkpoint commit → journal release → per-peer enqueue
//	  → first chunk on the wire → final chunk flushed → ack received
//
// All six stamps are taken by primary-side code (the release barrier in
// internal/repl and the per-peer send/ack goroutines in internal/replnet),
// so the intervals are single-clock and skew-free: "commit to apply" is
// commit-stamp to ack-stamp on one machine, with the follower's apply and
// the return trip folded into the last stage. The trade is deliberate —
// a cross-clock decomposition of the follower's own apply time would need
// clock sync the cluster does not have.
//
// The ring holds one entry per epoch, indexed epoch-modulo-capacity, and
// every stamping method is nil-safe and O(1) (PeerAck is O(capacity),
// called per ack, never per operation). The release-barrier stamps run
// inside a stop-the-world window, so they take one short mutex and do no
// allocation beyond the first peer slot append.

// PropStage names one interval of the epoch propagation pipeline.
type PropStage int

const (
	// StageReleaseWait: checkpoint commit (first shard hook) to the
	// journal release barrier (all shards committed). Zero when unsharded.
	StageReleaseWait PropStage = iota
	// StageQueueWait: per-peer enqueue (the collector pulled the released
	// batch) to the first chunk hitting the wire.
	StageQueueWait
	// StageWire: first chunk written to final chunk flushed.
	StageWire
	// StageApplyAck: final chunk flushed to the peer's ack received — the
	// follower's apply + checkpoint + return trip, seen from the primary.
	StageApplyAck
	// NumPropStages bounds the stage enum.
	NumPropStages
)

// String returns the stage's stable lower-snake name (the `stage` label
// value of incll_replnet_propagation_stage_seconds).
func (s PropStage) String() string {
	switch s {
	case StageReleaseWait:
		return "release_wait"
	case StageQueueWait:
		return "queue_wait"
	case StageWire:
		return "wire"
	case StageApplyAck:
		return "apply_ack"
	default:
		return "unknown"
	}
}

// PeerStamp is one peer's stamps for one epoch, unix nanoseconds on the
// primary clock; zero means "not reached".
type PeerStamp struct {
	Peer      string `json:"peer"`
	Enqueue   int64  `json:"enqueue_ns,omitempty"`
	FirstSend int64  `json:"first_send_ns,omitempty"`
	FinalSend int64  `json:"final_send_ns,omitempty"`
	Ack       int64  `json:"ack_ns,omitempty"`
}

// TimelineEpoch is one epoch's full lifecycle record.
type TimelineEpoch struct {
	Epoch   uint64      `json:"epoch"`
	Commit  int64       `json:"commit_ns,omitempty"`
	Release int64       `json:"release_ns,omitempty"`
	Peers   []PeerStamp `json:"peers,omitempty"`
}

// DefaultTimelineEpochs is the ring capacity NewEpochTimeline(0) provides
// — about half a minute of epochs at the paper's 64 ms cadence.
const DefaultTimelineEpochs = 512

// EpochTimeline is the fixed-size per-epoch stamp ring plus the stage and
// commit-to-apply histograms it feeds. A nil *EpochTimeline is valid and
// discards every stamp, so instrumented layers never branch on "is
// tracing on". Owned by the DB (not the replication server), so the
// histograms survive server re-serves and peer reconnects.
type EpochTimeline struct {
	mu      sync.Mutex
	ring    []TimelineEpoch
	maxSeen uint64
	sampled int64 // acked (epoch × peer) samples recorded

	stages [NumPropStages]Histogram
	all    Histogram // commit→ack across all peers

	peersMu sync.Mutex
	peers   map[string]*Histogram // commit→ack per peer id, stable across reconnects
}

// NewEpochTimeline returns a timeline holding the last capacity epochs
// (0 means DefaultTimelineEpochs).
func NewEpochTimeline(capacity int) *EpochTimeline {
	if capacity <= 0 {
		capacity = DefaultTimelineEpochs
	}
	return &EpochTimeline{
		ring:  make([]TimelineEpoch, capacity),
		peers: make(map[string]*Histogram),
	}
}

// slot resolves epoch's ring entry under t.mu, evicting an older epoch
// from the slot. Returns nil when the epoch has already been evicted by a
// newer one (a very late stamp for an epoch the ring no longer remembers).
func (t *EpochTimeline) slot(epoch uint64) *TimelineEpoch {
	s := &t.ring[epoch%uint64(len(t.ring))]
	if s.Epoch != epoch {
		if s.Epoch > epoch {
			return nil
		}
		*s = TimelineEpoch{Epoch: epoch}
	}
	return s
}

// peer resolves (appending if new) the peer's stamp slot within an entry.
func (e *TimelineEpoch) peer(id string) *PeerStamp {
	for i := range e.Peers {
		if e.Peers[i].Peer == id {
			return &e.Peers[i]
		}
	}
	e.Peers = append(e.Peers, PeerStamp{Peer: id})
	return &e.Peers[len(e.Peers)-1]
}

// Commit stamps epoch's checkpoint commit (first shard hook to reach it
// wins). Safe on a nil timeline. Runs inside the stop-the-world window:
// one mutex, no allocation.
func (t *EpochTimeline) Commit(epoch uint64) {
	if t == nil || epoch == 0 {
		return
	}
	now := time.Now().UnixNano()
	t.mu.Lock()
	if s := t.slot(epoch); s != nil && s.Commit == 0 {
		s.Commit = now
	}
	if epoch > t.maxSeen {
		t.maxSeen = epoch
	}
	t.mu.Unlock()
}

// ReleaseRange stamps the release barrier for every epoch in (from, to]
// and records each one's release_wait stage. Stamps are clamped monotone
// against the commit stamp so a wall-clock step can never produce a
// negative stage.
func (t *EpochTimeline) ReleaseRange(from, to uint64) {
	if t == nil || to == 0 || to <= from {
		return
	}
	if to-from > uint64(len(t.ring)) {
		from = to - uint64(len(t.ring))
	}
	now := time.Now().UnixNano()
	t.mu.Lock()
	for e := from + 1; e <= to; e++ {
		s := t.slot(e)
		if s == nil || s.Release != 0 {
			continue
		}
		rel := now
		if s.Commit > rel {
			rel = s.Commit
		}
		s.Release = rel
		if s.Commit != 0 {
			t.stages[StageReleaseWait].Record(rel - s.Commit)
		}
	}
	t.mu.Unlock()
}

// PeerEnqueue stamps the moment peer's collector pulled the released
// batch whose horizon is epoch (batches may collapse several released
// epochs; only the horizon epoch carries per-peer stamps).
func (t *EpochTimeline) PeerEnqueue(peer string, epoch uint64) {
	t.stampPeer(peer, epoch, func(p *PeerStamp, now, floor int64) {
		if p.Enqueue == 0 {
			p.Enqueue = maxi64(now, floor)
		}
	})
}

// PeerFirstSend stamps the first wire chunk of epoch's batch to peer.
func (t *EpochTimeline) PeerFirstSend(peer string, epoch uint64) {
	t.stampPeer(peer, epoch, func(p *PeerStamp, now, floor int64) {
		if p.FirstSend == 0 {
			p.FirstSend = maxi64(now, floor)
		}
	})
}

// PeerFinalSend stamps epoch's final chunk flushed to peer.
func (t *EpochTimeline) PeerFinalSend(peer string, epoch uint64) {
	t.stampPeer(peer, epoch, func(p *PeerStamp, now, floor int64) {
		if p.FinalSend == 0 {
			p.FinalSend = maxi64(now, floor)
		}
	})
}

// stampPeer is the common peer-stamp path: resolve the entry, resolve the
// peer slot, apply the stamp clamped to the floor of every earlier stamp
// so the recorded order is monotone even if the wall clock steps.
func (t *EpochTimeline) stampPeer(peer string, epoch uint64, apply func(p *PeerStamp, now, floor int64)) {
	if t == nil || epoch == 0 {
		return
	}
	now := time.Now().UnixNano()
	t.mu.Lock()
	if s := t.slot(epoch); s != nil {
		p := s.peer(peer)
		floor := maxi64(maxi64(s.Commit, s.Release), maxi64(p.Enqueue, p.FirstSend))
		apply(p, now, floor)
	}
	t.mu.Unlock()
}

// PeerAck stamps peer's ack for every ring epoch ≤ applied whose final
// chunk this peer has been sent, and records the queue_wait, wire,
// apply_ack, and commit-to-apply histograms for each. Acks carry an
// applied watermark (an ack for E acknowledges everything ≤ E), and a
// heartbeat ack sweeps up epochs whose batch ack raced the final-send
// stamp — so every sent epoch is eventually sampled exactly once.
func (t *EpochTimeline) PeerAck(peer string, applied uint64) {
	if t == nil || applied == 0 {
		return
	}
	now := time.Now().UnixNano()
	type sample struct {
		queue, wire, apply, total int64
	}
	var got []sample
	t.mu.Lock()
	for i := range t.ring {
		s := &t.ring[i]
		if s.Epoch == 0 || s.Epoch > applied {
			continue
		}
		p := s.peer(peer)
		if p.FinalSend == 0 || p.Ack != 0 {
			continue
		}
		p.Ack = maxi64(now, p.FinalSend)
		sm := sample{wire: p.FinalSend - p.FirstSend, apply: p.Ack - p.FinalSend, total: -1}
		if p.Enqueue != 0 {
			sm.queue = p.FirstSend - p.Enqueue
		} else {
			sm.queue = -1
		}
		if s.Commit != 0 {
			sm.total = p.Ack - s.Commit
		}
		got = append(got, sm)
		t.sampled++
	}
	t.mu.Unlock()
	if len(got) == 0 {
		return
	}
	var ph *Histogram
	if peer != "" {
		ph = t.PeerHist(peer)
	}
	for _, sm := range got {
		if sm.queue >= 0 {
			t.stages[StageQueueWait].Record(sm.queue)
		}
		t.stages[StageWire].Record(sm.wire)
		t.stages[StageApplyAck].Record(sm.apply)
		if sm.total >= 0 {
			t.all.Record(sm.total)
			if ph != nil {
				ph.Record(sm.total)
			}
		}
	}
}

// StageHist returns the stage's histogram (nanoseconds).
func (t *EpochTimeline) StageHist(s PropStage) *Histogram {
	if t == nil || s < 0 || s >= NumPropStages {
		return nil
	}
	return &t.stages[s]
}

// AllHist returns the aggregate commit-to-apply histogram across peers.
func (t *EpochTimeline) AllHist() *Histogram {
	if t == nil {
		return nil
	}
	return &t.all
}

// PeerHist returns (creating on first use) the peer's commit-to-apply
// histogram. The histogram is stable for the timeline's life: reconnects
// and server re-serves keep accumulating into the same series.
func (t *EpochTimeline) PeerHist(id string) *Histogram {
	if t == nil {
		return nil
	}
	t.peersMu.Lock()
	defer t.peersMu.Unlock()
	h := t.peers[id]
	if h == nil {
		h = &Histogram{}
		t.peers[id] = h
	}
	return h
}

// PeerHists snapshots every per-peer commit-to-apply histogram.
func (t *EpochTimeline) PeerHists() map[string]HistSnapshot {
	if t == nil {
		return nil
	}
	t.peersMu.Lock()
	defer t.peersMu.Unlock()
	if len(t.peers) == 0 {
		return nil
	}
	out := make(map[string]HistSnapshot, len(t.peers))
	for id, h := range t.peers {
		out[id] = h.Snapshot()
	}
	return out
}

// Sampled returns how many (epoch × peer) ack samples were recorded.
func (t *EpochTimeline) Sampled() int64 {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.sampled
}

// Tail returns up to n most recent timeline entries, oldest first, deep
// copied (callers may serialize them concurrently with stamping).
func (t *EpochTimeline) Tail(n int) []TimelineEpoch {
	if t == nil || n <= 0 {
		return nil
	}
	t.mu.Lock()
	out := make([]TimelineEpoch, 0, len(t.ring))
	for i := range t.ring {
		if t.ring[i].Epoch != 0 {
			e := t.ring[i]
			e.Peers = append([]PeerStamp(nil), e.Peers...)
			out = append(out, e)
		}
	}
	t.mu.Unlock()
	sort.Slice(out, func(i, j int) bool { return out[i].Epoch < out[j].Epoch })
	if len(out) > n {
		out = out[len(out)-n:]
	}
	return out
}

func maxi64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}
