package obs

import (
	"fmt"
	"io"
	"sync"
	"time"
)

// EventKind names one protocol event in the checkpoint / recovery /
// replication life cycle.
type EventKind uint8

const (
	// EvCheckpointPrepare: one store stopped its world and flushed its
	// arena. Dur is the flush duration, Arg the lines flushed.
	EvCheckpointPrepare EventKind = iota + 1
	// EvCheckpointCommit: the store durably began the next epoch and
	// resumed. Dur is the full stop-the-world window (Prepare lock to
	// resume), Epoch the epoch just committed.
	EvCheckpointCommit
	// EvCoordRecord: the sharding coordinator's single-line commit record
	// was written back and fenced — the global commit point. Epoch is the
	// epoch committed.
	EvCoordRecord
	// EvJournalRelease: the replication hub's released barrier (min across
	// shard commit watermarks) advanced. Epoch is the new watermark, Arg
	// the journal bytes buffered at that moment.
	EvJournalRelease
	// EvRecoveryReplay: Open replayed external-log pre-images of a failed
	// epoch. Dur is the replay duration, Arg the entries applied.
	EvRecoveryReplay
	// EvTxnReplay: reopen replayed committed transaction intents. Arg is
	// the number of transactions re-applied.
	EvTxnReplay
	// EvSnapshotAnchor: a snapshot export took its anchor checkpoint.
	// Epoch is the anchor epoch.
	EvSnapshotAnchor
	// EvReplicaApply: a replica applied one released epoch from its change
	// stream. Epoch is the epoch applied, Arg the entries in it.
	EvReplicaApply
	// EvReplicaResync: a replica fell off its stream and re-bootstrapped
	// from a fresh snapshot. Epoch is the new anchor.
	EvReplicaResync
	// EvFlightDump: the anomaly watchdog wrote a flight-recorder dump.
	// Epoch is the running epoch at dump time.
	EvFlightDump
	// EvFlightDumpFailed: a flight-recorder dump could not be written (the
	// watchdog never fails the process; this event is the only residue).
	EvFlightDumpFailed
	// EvReshardStart: a reshard began. Epoch is the donor's current epoch,
	// Arg the target shard count.
	EvReshardStart
	// EvReshardSnapshot: the reshard snapshot copy finished restoring into
	// the target. Epoch is the snapshot anchor, Arg the keys copied.
	EvReshardSnapshot
	// EvReshardTail: the reshard tail applied one released donor epoch to
	// the target. Epoch is the epoch applied, Arg the entries in it.
	EvReshardTail
	// EvReshardCutover: the topology manifest committed the new shard
	// count — the reshard's durable point of no return. Epoch is the donor
	// epoch at cutover, Arg the new topology version.
	EvReshardCutover
	// EvReshardDone: the reshard finished and the new topology serves all
	// traffic. Arg is the new shard count.
	EvReshardDone
	// EvNetPeerUp: a replication follower finished its snapshot bootstrap
	// on the primary. Epoch is the bootstrap anchor, Dur the handshake +
	// bootstrap time, Arg the connected-peer count after.
	EvNetPeerUp
	// EvNetPeerDown: a replication follower disconnected (or was declared
	// dead). Epoch is its last acked epoch, Dur the session length, Arg
	// the connected-peer count after.
	EvNetPeerDown
	// EvNetFollowerConnect: a networked follower completed a (re)connect
	// bootstrap. Epoch is the anchor, Dur the bootstrap time.
	EvNetFollowerConnect
	// EvNetPromote: a networked follower was promoted to primary. Epoch
	// is its applied watermark at promotion.
	EvNetPromote
	// EvClusterDump: a flight-recorder dump captured the cluster state
	// (cluster.json: peer table + epoch-timeline tail). Epoch is the
	// running epoch at dump time, Arg the connected-peer count — the
	// event anchors the dump in the timeline for post-mortems.
	EvClusterDump
)

// String returns the event kind's stable lower-snake name (also used in
// trace dumps and artifacts).
func (k EventKind) String() string {
	switch k {
	case EvCheckpointPrepare:
		return "checkpoint_prepare"
	case EvCheckpointCommit:
		return "checkpoint_commit"
	case EvCoordRecord:
		return "coord_record"
	case EvJournalRelease:
		return "journal_release"
	case EvRecoveryReplay:
		return "recovery_replay"
	case EvTxnReplay:
		return "txn_replay"
	case EvSnapshotAnchor:
		return "snapshot_anchor"
	case EvReplicaApply:
		return "replica_apply"
	case EvReplicaResync:
		return "replica_resync"
	case EvFlightDump:
		return "flight_dump"
	case EvFlightDumpFailed:
		return "flight_dump_failed"
	case EvReshardStart:
		return "reshard_start"
	case EvReshardSnapshot:
		return "reshard_snapshot"
	case EvReshardTail:
		return "reshard_tail"
	case EvReshardCutover:
		return "reshard_cutover"
	case EvReshardDone:
		return "reshard_done"
	case EvNetPeerUp:
		return "net_peer_up"
	case EvNetPeerDown:
		return "net_peer_down"
	case EvNetFollowerConnect:
		return "net_follower_connect"
	case EvNetPromote:
		return "net_promote"
	case EvClusterDump:
		return "cluster_dump"
	default:
		return fmt.Sprintf("event(%d)", uint8(k))
	}
}

// Event is one timestamped protocol event.
type Event struct {
	Seq   uint64        // monotonically increasing per tracer
	Time  time.Time     // wall-clock time of the event
	Kind  EventKind     //
	Shard int           // originating shard, or -1 when not shard-scoped
	Epoch uint64        // epoch the event concerns, 0 when not applicable
	Dur   time.Duration // measured duration, 0 when not applicable
	Arg   int64         // kind-specific payload (lines, entries, bytes)
}

// Tracer records protocol events into a fixed-size ring, overwriting the
// oldest once full. A nil *Tracer is valid and discards everything, so
// instrumented layers never need to branch on "is tracing on". Record
// takes a mutex: it is for rare events (per epoch, per recovery), never
// per-operation.
type Tracer struct {
	mu   sync.Mutex
	seq  uint64
	ring []Event
	n    int // events stored (≤ len(ring))
	next int // ring slot the next event lands in
}

// DefaultTraceEvents is the ring capacity NewTracer(0) provides — a few
// minutes of epoch-boundary events at the paper's 64 ms cadence.
const DefaultTraceEvents = 1024

// NewTracer returns a tracer holding the last capacity events (0 means
// DefaultTraceEvents).
func NewTracer(capacity int) *Tracer {
	if capacity <= 0 {
		capacity = DefaultTraceEvents
	}
	return &Tracer{ring: make([]Event, capacity)}
}

// Record appends one event. Safe on a nil tracer (no-op).
func (t *Tracer) Record(kind EventKind, shard int, epoch uint64, dur time.Duration, arg int64) {
	if t == nil {
		return
	}
	now := time.Now()
	t.mu.Lock()
	t.seq++
	t.ring[t.next] = Event{
		Seq:   t.seq,
		Time:  now,
		Kind:  kind,
		Shard: shard,
		Epoch: epoch,
		Dur:   dur,
		Arg:   arg,
	}
	t.next = (t.next + 1) % len(t.ring)
	if t.n < len(t.ring) {
		t.n++
	}
	t.mu.Unlock()
}

// Events returns a copy of the buffered events, oldest first.
func (t *Tracer) Events() []Event {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]Event, 0, t.n)
	start := t.next - t.n
	if start < 0 {
		start += len(t.ring)
	}
	for i := 0; i < t.n; i++ {
		out = append(out, t.ring[(start+i)%len(t.ring)])
	}
	return out
}

// Dump writes the buffered events to w, oldest first, one line per event:
//
//	seq time kind shard=N epoch=E dur=D arg=A
//
// Safe on a nil tracer (writes nothing).
func (t *Tracer) Dump(w io.Writer) error {
	for _, e := range t.Events() {
		_, err := fmt.Fprintf(w, "%6d %s %-18s shard=%-3d epoch=%-6d dur=%-12s arg=%d\n",
			e.Seq, e.Time.Format("15:04:05.000000"), e.Kind, e.Shard, e.Epoch, e.Dur, e.Arg)
		if err != nil {
			return err
		}
	}
	return nil
}
