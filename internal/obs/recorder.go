package obs

import (
	"sync"
	"time"
)

// RecorderPoint is one timestamped registry snapshot.
type RecorderPoint struct {
	Time   time.Time     `json:"time"`
	Values []SampleValue `json:"values"`
}

// HistoryPoint is one snapshot flattened for consumers: series values
// keyed by name{labels}, plus per-second rates for the counter series
// (delta against the previous point; absent on the first point and for
// non-monotonic series).
type HistoryPoint struct {
	Time   time.Time          `json:"time"`
	Values map[string]float64 `json:"values"`
	Rates  map[string]float64 `json:"rates,omitempty"`
}

// Recorder keeps a ring of periodic Registry snapshots — the metric
// time-series behind /metrics/history. Take is cheap (one registry read),
// so a 1 s cadence costs nothing measurable; the ring bounds memory.
type Recorder struct {
	reg      *Registry
	interval time.Duration

	mu    sync.Mutex
	ring  []RecorderPoint
	taken int // total points ever taken
	stop  chan struct{}
	done  chan struct{}
}

// NewRecorder builds a recorder over reg keeping the last capacity points
// at the given interval (defaults: 1 s, 600 points).
func NewRecorder(reg *Registry, interval time.Duration, capacity int) *Recorder {
	if interval <= 0 {
		interval = time.Second
	}
	if capacity < 1 {
		capacity = 600
	}
	return &Recorder{reg: reg, interval: interval, ring: make([]RecorderPoint, capacity)}
}

// Interval reports the snapshot period.
func (r *Recorder) Interval() time.Duration { return r.interval }

// Take appends one snapshot now. Safe concurrently with Start's ticker.
func (r *Recorder) Take() {
	p := RecorderPoint{Time: time.Now(), Values: r.reg.Snapshot()}
	r.mu.Lock()
	r.ring[r.taken%len(r.ring)] = p
	r.taken++
	r.mu.Unlock()
}

// Start begins periodic snapshots (taking one immediately). A second Start
// without an intervening Stop is a no-op.
func (r *Recorder) Start() {
	r.mu.Lock()
	if r.stop != nil {
		r.mu.Unlock()
		return
	}
	stop, done := make(chan struct{}), make(chan struct{})
	r.stop, r.done = stop, done
	r.mu.Unlock()

	r.Take()
	go func() {
		defer close(done)
		t := time.NewTicker(r.interval)
		defer t.Stop()
		for {
			select {
			case <-t.C:
				r.Take()
			case <-stop:
				return
			}
		}
	}()
}

// Stop halts the ticker, keeping the recorded points readable.
func (r *Recorder) Stop() {
	r.mu.Lock()
	stop, done := r.stop, r.done
	r.stop, r.done = nil, nil
	r.mu.Unlock()
	if stop != nil {
		close(stop)
		<-done
	}
}

// Points returns the retained snapshots, oldest first.
func (r *Recorder) Points() []RecorderPoint {
	r.mu.Lock()
	defer r.mu.Unlock()
	n := r.taken
	if n > len(r.ring) {
		n = len(r.ring)
	}
	out := make([]RecorderPoint, 0, n)
	start := r.taken - n
	for i := start; i < r.taken; i++ {
		out = append(out, r.ring[i%len(r.ring)])
	}
	return out
}

// History flattens the retained points and computes per-second rates for
// every counter series against its previous point.
func (r *Recorder) History() []HistoryPoint {
	points := r.Points()
	out := make([]HistoryPoint, 0, len(points))
	var prev *RecorderPoint
	for i := range points {
		p := &points[i]
		hp := HistoryPoint{Time: p.Time, Values: make(map[string]float64, len(p.Values))}
		for _, v := range p.Values {
			hp.Values[v.Key()] = v.Value
		}
		if prev != nil {
			dt := p.Time.Sub(prev.Time).Seconds()
			if dt > 0 {
				prevVals := make(map[string]float64, len(prev.Values))
				for _, v := range prev.Values {
					prevVals[v.Key()] = v.Value
				}
				for _, v := range p.Values {
					if v.Kind != "counter" {
						continue
					}
					old, ok := prevVals[v.Key()]
					if !ok || v.Value < old {
						continue // new series, or a reset — no rate
					}
					if hp.Rates == nil {
						hp.Rates = make(map[string]float64)
					}
					hp.Rates[v.Key()] = (v.Value - old) / dt
				}
			}
		}
		out = append(out, hp)
		prev = p
	}
	return out
}
