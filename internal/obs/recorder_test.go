package obs

import (
	"strings"
	"sync/atomic"
	"testing"
	"time"
)

func TestRegistrySnapshotValues(t *testing.T) {
	vals := buildTestRegistry().Snapshot()
	byKey := make(map[string]SampleValue)
	for _, v := range vals {
		byKey[v.Key()] = v
	}
	if v := byKey[`incll_test_ops_total{op="put"}`]; v.Value != 10 || v.Kind != "counter" {
		t.Fatalf("ops{op=put}: %+v", v)
	}
	if v := byKey["incll_test_lag_epochs"]; v.Value != 2 || v.Kind != "gauge" {
		t.Fatalf("lag: %+v", v)
	}
	// The histogram flattens to scalar derived series in exported units
	// (1e-9 scale: ns recordings → seconds).
	if v := byKey["incll_test_stw_seconds_count"]; v.Value != 100 || v.Kind != "counter" {
		t.Fatalf("stw count: %+v", v)
	}
	if v := byKey["incll_test_stw_seconds_p99"]; v.Kind != "gauge" || v.Value <= 0 || v.Value > 1e-3 {
		t.Fatalf("stw p99: %+v", v)
	}
	if v := byKey["incll_test_stw_seconds_sum"]; v.Value <= 0 || v.Value > 1 {
		t.Fatalf("stw sum: %+v", v)
	}
}

func TestRecorderSnapshotAndRates(t *testing.T) {
	var ops atomic.Int64
	reg := NewRegistry()
	reg.Counter("r_ops_total", "ops", "", ops.Load)
	reg.Gauge("r_depth", "depth", "", func() int64 { return 7 })

	r := NewRecorder(reg, time.Second, 8)
	ops.Store(100)
	r.Take()
	time.Sleep(20 * time.Millisecond)
	ops.Store(300)
	r.Take()

	pts := r.Points()
	if len(pts) != 2 {
		t.Fatalf("points=%d want 2", len(pts))
	}
	hist := r.History()
	if len(hist) != 2 {
		t.Fatalf("history=%d want 2", len(hist))
	}
	if hist[0].Rates != nil {
		t.Fatalf("first point has rates: %v", hist[0].Rates)
	}
	if got := hist[1].Values["r_ops_total"]; got != 300 {
		t.Fatalf("ops value=%v want 300", got)
	}
	if got := hist[1].Values["r_depth"]; got != 7 {
		t.Fatalf("depth value=%v want 7", got)
	}
	dt := pts[1].Time.Sub(pts[0].Time).Seconds()
	want := 200 / dt
	if got := hist[1].Rates["r_ops_total"]; got < want*0.99 || got > want*1.01 {
		t.Fatalf("ops rate=%v want ≈%v", got, want)
	}
	if _, ok := hist[1].Rates["r_depth"]; ok {
		t.Fatal("gauge got a rate")
	}
}

func TestRecorderRingEviction(t *testing.T) {
	var n atomic.Int64
	reg := NewRegistry()
	reg.Counter("r_ticks_total", "ticks", "", n.Load)
	r := NewRecorder(reg, time.Second, 3)
	for i := 1; i <= 10; i++ {
		n.Store(int64(i))
		r.Take()
	}
	pts := r.Points()
	if len(pts) != 3 {
		t.Fatalf("points=%d want 3 (capacity)", len(pts))
	}
	for i, p := range pts {
		if got := p.Values[0].Value; got != float64(8+i) {
			t.Fatalf("point %d value=%v want %d (oldest-first, last 3 kept)", i, got, 8+i)
		}
	}
}

func TestRecorderStartStop(t *testing.T) {
	var n atomic.Int64
	reg := NewRegistry()
	reg.Counter("r_bg_total", "bg", "", n.Load)
	r := NewRecorder(reg, 5*time.Millisecond, 100)
	r.Start()
	r.Start() // idempotent
	deadline := time.Now().Add(2 * time.Second)
	for len(r.Points()) < 3 && time.Now().Before(deadline) {
		time.Sleep(5 * time.Millisecond)
	}
	r.Stop()
	r.Stop() // idempotent
	got := len(r.Points())
	if got < 3 {
		t.Fatalf("background recorder took %d points, want ≥3", got)
	}
	time.Sleep(15 * time.Millisecond)
	if after := len(r.Points()); after != got {
		t.Fatalf("recorder kept ticking after Stop: %d → %d", got, after)
	}
}

func TestRecorderCounterReset(t *testing.T) {
	v := int64(100)
	reg := NewRegistry()
	reg.Counter("r_reset_total", "resettable", "", func() int64 { return v })
	r := NewRecorder(reg, time.Second, 4)
	r.Take()
	v = 10 // a reset (new DB instance behind the same registry closure)
	r.Take()
	hist := r.History()
	if _, ok := hist[1].Rates["r_reset_total"]; ok {
		t.Fatalf("negative counter delta produced a rate: %v", hist[1].Rates)
	}
}

func TestLintStrictConventions(t *testing.T) {
	bad := map[string]string{
		"no-help":         "# TYPE foo_total counter\nfoo_total 1\n",
		"empty-help":      "# HELP foo_total \n# TYPE foo_total counter\nfoo_total 1\n",
		"gauge-total":     "# HELP g_total h\n# TYPE g_total gauge\ng_total 1\n",
		"ms-suffix":       "# HELP lat_ms h\n# TYPE lat_ms gauge\nlat_ms 1\n",
		"counter-ms":      "# HELP lat_ms_total h\n# TYPE lat_ms_total counter\nlat_ms_total 1\n",
		"kb-suffix":       "# HELP cap_kb h\n# TYPE cap_kb gauge\ncap_kb 1\n",
		"hist-no-unit":    "# HELP h h\n# TYPE h histogram\nh_bucket{le=\"+Inf\"} 1\nh_sum 1\nh_count 1\n",
		"hist-us-suffix":  "# HELP h_us h\n# TYPE h_us histogram\nh_us_bucket{le=\"+Inf\"} 1\nh_us_sum 1\nh_us_count 1\n",
		"histogram-total": "# HELP h_seconds_total h\n# TYPE h_seconds_total histogram\nh_seconds_total_bucket{le=\"+Inf\"} 1\nh_seconds_total_sum 1\nh_seconds_total_count 1\n",
	}
	for name, doc := range bad {
		if err := CheckExposition(strings.NewReader(doc)); err == nil {
			t.Errorf("%s: strict lint accepted:\n%s", name, doc)
		}
	}
	good := map[string]string{
		"seconds-hist": "# HELP h_seconds h\n# TYPE h_seconds histogram\nh_seconds_bucket{le=\"+Inf\"} 1\nh_seconds_sum 1\nh_seconds_count 1\n",
		"bytes-gauge":  "# HELP cap_bytes h\n# TYPE cap_bytes gauge\ncap_bytes 1\n",
		"plain-total":  "# HELP ops_total h\n# TYPE ops_total counter\nops_total 1\n",
		"ratio-hist":   "# HELP hit_ratio h\n# TYPE hit_ratio histogram\nhit_ratio_bucket{le=\"+Inf\"} 1\nhit_ratio_sum 1\nhit_ratio_count 1\n",
	}
	for name, doc := range good {
		if err := CheckExposition(strings.NewReader(doc)); err != nil {
			t.Errorf("%s: strict lint rejected good exposition: %v", name, err)
		}
	}
}

func TestTracerConcurrentRecordDump(t *testing.T) {
	tr := NewTracer(32)
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 2000; i++ {
			tr.Record(EvCheckpointCommit, 0, uint64(i), time.Microsecond, 0)
		}
	}()
	for {
		if err := tr.Dump(discardWriter{}); err != nil {
			t.Fatal(err)
		}
		select {
		case <-done:
			if evs := tr.Events(); len(evs) != 32 {
				t.Fatalf("got %d events, want 32", len(evs))
			}
			return
		default:
		}
	}
}

type discardWriter struct{}

func (discardWriter) Write(p []byte) (int, error) { return len(p), nil }
