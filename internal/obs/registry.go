package obs

import (
	"fmt"
	"io"
	"sort"
	"strings"
	"sync"
)

// metricKind distinguishes how a registered series is rendered.
type metricKind int

const (
	kindCounter metricKind = iota
	kindGauge
	kindHistogram
)

func (k metricKind) String() string {
	switch k {
	case kindCounter:
		return "counter"
	case kindGauge:
		return "gauge"
	default:
		return "histogram"
	}
}

// series is one registered time series: a family name, an optional label
// set, and a read function (or histogram) evaluated at scrape time.
type series struct {
	name   string // family name, e.g. incll_ops_total
	labels string // rendered label pairs without braces, e.g. `op="put"`
	read   func() int64
	hist   *Histogram
	scale  float64 // recorded-unit → exported-unit factor (histograms)
}

// family groups every series sharing one metric name, carrying the single
// HELP/TYPE header the exposition format allows per name.
type family struct {
	name   string
	help   string
	kind   metricKind
	series []series
}

// Registry holds live metric bindings — closures over the process's actual
// counters, so registration never copies or double-counts — and renders
// them in Prometheus text exposition format. Families render in
// registration order; a scrape reads every value at scrape time.
type Registry struct {
	mu       sync.Mutex
	families []*family
	index    map[string]*family
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{index: make(map[string]*family)}
}

// Labels renders label key/value pairs for registration, sorted by key:
// Labels("shard", "0", "op", "put") → `op="put",shard="0"`. Values are
// escaped per the exposition format.
func Labels(kv ...string) string {
	if len(kv)%2 != 0 {
		panic("obs: Labels takes key/value pairs")
	}
	pairs := make([]string, 0, len(kv)/2)
	for i := 0; i < len(kv); i += 2 {
		v := strings.NewReplacer(`\`, `\\`, `"`, `\"`, "\n", `\n`).Replace(kv[i+1])
		pairs = append(pairs, fmt.Sprintf(`%s="%s"`, kv[i], v))
	}
	sort.Strings(pairs)
	return strings.Join(pairs, ",")
}

func (r *Registry) add(name, help string, kind metricKind, s series) {
	r.mu.Lock()
	defer r.mu.Unlock()
	f := r.index[name]
	if f == nil {
		f = &family{name: name, help: help, kind: kind}
		r.index[name] = f
		r.families = append(r.families, f)
	} else if f.kind != kind {
		panic(fmt.Sprintf("obs: metric %s registered as both %s and %s", name, f.kind, kind))
	}
	for _, old := range f.series {
		if old.labels == s.labels {
			panic(fmt.Sprintf("obs: duplicate series %s{%s}", name, s.labels))
		}
	}
	f.series = append(f.series, s)
}

// Counter registers a monotonic series read from fn at scrape time. By
// convention name ends in _total. labels is a rendered label set (see
// Labels) or "" for none; multiple label sets may share one name.
func (r *Registry) Counter(name, help, labels string, fn func() int64) {
	r.add(name, help, kindCounter, series{name: name, labels: labels, read: fn})
}

// Gauge registers an instantaneous series read from fn at scrape time.
func (r *Registry) Gauge(name, help, labels string, fn func() int64) {
	r.add(name, help, kindGauge, series{name: name, labels: labels, read: fn})
}

// Histogram registers h under name. scale converts recorded units to
// exported units at render time (1e-9 exports nanosecond recordings as
// seconds, Prometheus's base unit; 1 exports them unchanged).
func (r *Registry) Histogram(name, help, labels string, h *Histogram, scale float64) {
	if scale == 0 {
		scale = 1
	}
	r.add(name, help, kindHistogram, series{name: name, labels: labels, hist: h, scale: scale})
}

// histExportBounds are the cumulative bucket upper bounds histograms
// export, in recorded units (powers of four from 1 Ki to 4 Gi — for a
// nanosecond domain, ~1 µs to ~4 s). Coarser than the internal 1024
// buckets on purpose: a scrape surface wants a dozen stable bounds, the
// internal resolution stays available through Quantile.
var histExportBounds = []uint64{
	1 << 10, 1 << 12, 1 << 14, 1 << 16, 1 << 18, 1 << 20,
	1 << 22, 1 << 24, 1 << 26, 1 << 28, 1 << 30, 1 << 32,
}

// WritePrometheus renders every registered family in text exposition
// format (version 0.0.4): one HELP/TYPE header per family, then each
// series with its labels.
func (r *Registry) WritePrometheus(w io.Writer) error {
	r.mu.Lock()
	fams := make([]*family, len(r.families))
	copy(fams, r.families)
	r.mu.Unlock()

	for _, f := range fams {
		if _, err := fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s %s\n", f.name, f.help, f.name, f.kind); err != nil {
			return err
		}
		for _, s := range f.series {
			var err error
			if f.kind == kindHistogram {
				err = writeHistSeries(w, s)
			} else {
				_, err = fmt.Fprintf(w, "%s%s %d\n", f.name, braced(s.labels), s.read())
			}
			if err != nil {
				return err
			}
		}
	}
	return nil
}

// SampleValue is one numeric reading of a registered series, taken by
// Registry.Snapshot. Histograms contribute derived series — name_count and
// name_sum (counters, sum in exported units) plus name_p50 and name_p99
// (gauges) — so a snapshot stream is entirely scalar.
type SampleValue struct {
	Name   string  `json:"name"`
	Labels string  `json:"labels,omitempty"` // rendered pairs, e.g. `op="put",shard="0"`
	Kind   string  `json:"kind"`             // counter | gauge
	Value  float64 `json:"value"`
}

// Key is the series identity a time-series consumer should index by:
// the name with its rendered label set.
func (v SampleValue) Key() string { return v.Name + braced(v.Labels) }

// Snapshot reads every registered series once, in registration order. The
// Kind field tells a consumer which series are monotonic (rate-able).
func (r *Registry) Snapshot() []SampleValue {
	r.mu.Lock()
	fams := make([]*family, len(r.families))
	copy(fams, r.families)
	r.mu.Unlock()

	var out []SampleValue
	for _, f := range fams {
		for _, s := range f.series {
			if f.kind == kindHistogram {
				h := s.hist
				out = append(out,
					SampleValue{Name: f.name + "_count", Labels: s.labels, Kind: "counter", Value: float64(h.Count())},
					SampleValue{Name: f.name + "_sum", Labels: s.labels, Kind: "counter", Value: float64(h.Sum()) * s.scale},
					SampleValue{Name: f.name + "_p50", Labels: s.labels, Kind: "gauge", Value: float64(h.Quantile(0.50)) * s.scale},
					SampleValue{Name: f.name + "_p99", Labels: s.labels, Kind: "gauge", Value: float64(h.Quantile(0.99)) * s.scale},
				)
				continue
			}
			out = append(out, SampleValue{Name: f.name, Labels: s.labels, Kind: f.kind.String(), Value: float64(s.read())})
		}
	}
	return out
}

// braced wraps a rendered label set in braces, or returns "" for none.
func braced(labels string) string {
	if labels == "" {
		return ""
	}
	return "{" + labels + "}"
}

// joinLabels appends extra to a rendered label set.
func joinLabels(labels, extra string) string {
	if labels == "" {
		return extra
	}
	return labels + "," + extra
}

func writeHistSeries(w io.Writer, s series) error {
	h := s.hist
	for _, b := range histExportBounds {
		le := fmt.Sprintf(`le="%g"`, float64(b)*s.scale)
		if _, err := fmt.Fprintf(w, "%s_bucket{%s} %d\n", s.name, joinLabels(s.labels, le), h.cumulative(b)); err != nil {
			return err
		}
	}
	if _, err := fmt.Fprintf(w, "%s_bucket{%s} %d\n", s.name, joinLabels(s.labels, `le="+Inf"`), h.Count()); err != nil {
		return err
	}
	if _, err := fmt.Fprintf(w, "%s_sum%s %g\n", s.name, braced(s.labels), float64(h.Sum())*s.scale); err != nil {
		return err
	}
	_, err := fmt.Fprintf(w, "%s_count%s %d\n", s.name, braced(s.labels), h.Count())
	return err
}
