package obs

import (
	"bufio"
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"
)

// This file is a small, dependency-free parser and linter for the
// Prometheus text exposition format (version 0.0.4). CI uses it to lint
// the kvserver /metrics output; tests use ParseExposition to make
// end-to-end assertions against scraped values.

// Sample is one parsed series sample.
type Sample struct {
	Name   string
	Labels map[string]string
	Value  float64
}

// Label returns the sample's value for key, or "".
func (s Sample) Label(key string) string { return s.Labels[key] }

// Exposition is a parsed scrape: samples in document order plus the
// HELP/TYPE metadata by family name.
type Exposition struct {
	Samples []Sample
	Types   map[string]string
	Helps   map[string]string
	// HelpCounts counts HELP lines per family. The format allows at most
	// one; a labeled family that re-emits its HELP per label value (a
	// classic per-peer registration bug) parses fine — the last line wins
	// — so the count is kept for CheckExposition to reject.
	HelpCounts map[string]int
}

// Find returns the samples named name (exact match, so histogram
// components are addressed as name_bucket / name_sum / name_count).
func (e *Exposition) Find(name string) []Sample {
	var out []Sample
	for _, s := range e.Samples {
		if s.Name == name {
			out = append(out, s)
		}
	}
	return out
}

// Value returns the single sample named name whose labels include every
// pair in want (given as alternating key, value). Errors if no sample or
// more than one matches.
func (e *Exposition) Value(name string, want ...string) (float64, error) {
	if len(want)%2 != 0 {
		return 0, fmt.Errorf("obs: Value takes key/value pairs")
	}
	var found []Sample
outer:
	for _, s := range e.Find(name) {
		for i := 0; i < len(want); i += 2 {
			if s.Labels[want[i]] != want[i+1] {
				continue outer
			}
		}
		found = append(found, s)
	}
	switch len(found) {
	case 0:
		return 0, fmt.Errorf("obs: no sample %s matching %v", name, want)
	case 1:
		return found[0].Value, nil
	default:
		return 0, fmt.Errorf("obs: %d samples %s match %v", len(found), name, want)
	}
}

// ParseExposition parses Prometheus text exposition format, returning the
// samples and metadata. Parse errors carry the 1-based line number.
func ParseExposition(r io.Reader) (*Exposition, error) {
	exp := &Exposition{Types: make(map[string]string), Helps: make(map[string]string), HelpCounts: make(map[string]int)}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<16), 1<<22)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "#") {
			if err := parseComment(line, exp); err != nil {
				return nil, fmt.Errorf("line %d: %w", lineNo, err)
			}
			continue
		}
		s, err := parseSample(line)
		if err != nil {
			return nil, fmt.Errorf("line %d: %w", lineNo, err)
		}
		exp.Samples = append(exp.Samples, s)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return exp, nil
}

func parseComment(line string, exp *Exposition) error {
	fields := strings.SplitN(line, " ", 4)
	if len(fields) < 2 {
		return nil // bare comment
	}
	switch fields[1] {
	case "HELP":
		if len(fields) < 3 {
			return fmt.Errorf("malformed HELP line %q", line)
		}
		help := ""
		if len(fields) == 4 {
			help = fields[3]
		}
		exp.Helps[fields[2]] = help
		exp.HelpCounts[fields[2]]++
	case "TYPE":
		if len(fields) != 4 {
			return fmt.Errorf("malformed TYPE line %q", line)
		}
		switch fields[3] {
		case "counter", "gauge", "histogram", "summary", "untyped":
		default:
			return fmt.Errorf("unknown metric type %q", fields[3])
		}
		if _, dup := exp.Types[fields[2]]; dup {
			return fmt.Errorf("duplicate TYPE for %s", fields[2])
		}
		exp.Types[fields[2]] = fields[3]
	}
	return nil
}

func parseSample(line string) (Sample, error) {
	s := Sample{Labels: make(map[string]string)}
	rest := line
	if i := strings.IndexAny(rest, "{ \t"); i < 0 {
		return s, fmt.Errorf("sample %q has no value", line)
	} else {
		s.Name = rest[:i]
		rest = rest[i:]
	}
	if !validMetricName(s.Name) {
		return s, fmt.Errorf("invalid metric name %q", s.Name)
	}
	if strings.HasPrefix(rest, "{") {
		end := strings.Index(rest, "}")
		if end < 0 {
			return s, fmt.Errorf("unterminated label set in %q", line)
		}
		if err := parseLabels(rest[1:end], s.Labels); err != nil {
			return s, err
		}
		rest = rest[end+1:]
	}
	fields := strings.Fields(rest)
	if len(fields) < 1 || len(fields) > 2 { // optional trailing timestamp
		return s, fmt.Errorf("malformed sample %q", line)
	}
	v, err := strconv.ParseFloat(fields[0], 64)
	if err != nil {
		return s, fmt.Errorf("bad value in %q: %w", line, err)
	}
	s.Value = v
	return s, nil
}

func parseLabels(body string, out map[string]string) error {
	rest := body
	for rest != "" {
		eq := strings.Index(rest, "=")
		if eq < 0 {
			return fmt.Errorf("malformed labels %q", body)
		}
		key := strings.TrimSpace(rest[:eq])
		if !validLabelName(key) {
			return fmt.Errorf("invalid label name %q", key)
		}
		rest = rest[eq+1:]
		if !strings.HasPrefix(rest, `"`) {
			return fmt.Errorf("unquoted label value in %q", body)
		}
		rest = rest[1:]
		var val strings.Builder
		for {
			if rest == "" {
				return fmt.Errorf("unterminated label value in %q", body)
			}
			c := rest[0]
			rest = rest[1:]
			if c == '\\' {
				if rest == "" {
					return fmt.Errorf("dangling escape in %q", body)
				}
				switch rest[0] {
				case 'n':
					val.WriteByte('\n')
				case '\\', '"':
					val.WriteByte(rest[0])
				default:
					return fmt.Errorf("bad escape \\%c in %q", rest[0], body)
				}
				rest = rest[1:]
				continue
			}
			if c == '"' {
				break
			}
			val.WriteByte(c)
		}
		if _, dup := out[key]; dup {
			return fmt.Errorf("duplicate label %q", key)
		}
		out[key] = val.String()
		rest = strings.TrimPrefix(strings.TrimSpace(rest), ",")
		rest = strings.TrimSpace(rest)
	}
	return nil
}

func validMetricName(s string) bool {
	for i, c := range s {
		alpha := c == '_' || c == ':' || (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z')
		if !alpha && (i == 0 || c < '0' || c > '9') {
			return false
		}
	}
	return s != ""
}

func validLabelName(s string) bool {
	if strings.HasPrefix(s, "__") {
		return false // reserved
	}
	for i, c := range s {
		alpha := c == '_' || (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z')
		if !alpha && (i == 0 || c < '0' || c > '9') {
			return false
		}
	}
	return s != ""
}

// baseName strips a histogram component suffix, returning the family the
// sample belongs to for TYPE lookup.
func baseName(name string, types map[string]string) string {
	for _, suf := range []string{"_bucket", "_sum", "_count"} {
		base := strings.TrimSuffix(name, suf)
		if base != name && types[base] == "histogram" {
			return base
		}
	}
	return name
}

// nonBaseUnitSuffixes maps discouraged unit suffixes to the Prometheus
// base unit a family should use instead: time in seconds, size in bytes,
// fractions as ratios.
var nonBaseUnitSuffixes = map[string]string{
	"_ms": "_seconds", "_millis": "_seconds", "_milliseconds": "_seconds",
	"_us": "_seconds", "_micros": "_seconds", "_microseconds": "_seconds",
	"_ns": "_seconds", "_nanos": "_seconds", "_nanoseconds": "_seconds",
	"_kb": "_bytes", "_kib": "_bytes", "_mb": "_bytes", "_mib": "_bytes",
	"_gb": "_bytes", "_gib": "_bytes",
	"_pct": "_ratio", "_percent": "_ratio",
}

// histogramUnitSuffixes are the base-unit suffixes a histogram family name
// must carry — a bucketed distribution is always of a measured quantity.
var histogramUnitSuffixes = []string{"_seconds", "_bytes", "_ratio"}

// checkUnitSuffix enforces the unit-suffix conventions on one family name:
// no non-base units anywhere (counters are checked after stripping
// _total), _total only on counters, and a base-unit suffix on histograms.
func checkUnitSuffix(fam, typ string) error {
	base := fam
	if typ == "counter" {
		base = strings.TrimSuffix(fam, "_total")
	} else if strings.HasSuffix(fam, "_total") {
		return fmt.Errorf("%s %s must not end in _total (reserved for counters)", typ, fam)
	}
	for suf, want := range nonBaseUnitSuffixes {
		if strings.HasSuffix(base, suf) {
			return fmt.Errorf("%s %s uses non-base unit %s; use %s", typ, fam, suf, want)
		}
	}
	if typ == "histogram" {
		for _, suf := range histogramUnitSuffixes {
			if strings.HasSuffix(fam, suf) {
				return nil
			}
		}
		return fmt.Errorf("histogram %s lacks a base-unit suffix (%s)",
			fam, strings.Join(histogramUnitSuffixes, ", "))
	}
	return nil
}

// CheckExposition parses and lints a scrape: every sample must belong to a
// family with TYPE and non-empty HELP metadata (emitted exactly once — a
// labeled family repeating its HELP per label value is rejected), counters
// must end in _total, family names must use Prometheus base units
// (_seconds, _bytes, _ratio — never _ms, _kb, ...; _total only on
// counters; histograms carry a unit suffix), histograms must have a +Inf
// bucket and matching _sum/_count, label sets must not repeat within a
// family, every series of a family must use the same label keys (the
// bucket-only le aside), le must not appear outside histogram buckets,
// and families must not interleave.
func CheckExposition(r io.Reader) error {
	exp, err := ParseExposition(r)
	if err != nil {
		return err
	}
	seen := make(map[string]bool)      // family → series started
	series := make(map[string]bool)    // name{labels} → present
	histInf := make(map[string]bool)   // histogram family → saw +Inf bucket
	histParts := make(map[string]int)  // histogram family → sum/count parts
	famKeys := make(map[string]string) // family → canonical label key set
	var order []string                 // family first-appearance order
	lastFamily := ""
	for _, s := range exp.Samples {
		fam := baseName(s.Name, exp.Types)
		typ, ok := exp.Types[fam]
		if !ok {
			return fmt.Errorf("sample %s has no TYPE metadata", s.Name)
		}
		if typ == "counter" && !strings.HasSuffix(fam, "_total") {
			return fmt.Errorf("counter %s should end in _total", fam)
		}
		if fam != lastFamily && !seen[fam] {
			if strings.TrimSpace(exp.Helps[fam]) == "" {
				return fmt.Errorf("family %s has no HELP text", fam)
			}
			if n := exp.HelpCounts[fam]; n > 1 {
				return fmt.Errorf("family %s has %d HELP lines (one per family; repeated per label value?)", fam, n)
			}
			if err := checkUnitSuffix(fam, typ); err != nil {
				return err
			}
		}
		if fam != lastFamily {
			if seen[fam] {
				return fmt.Errorf("family %s interleaves with other families", fam)
			}
			seen[fam] = true
			order = append(order, fam)
			lastFamily = fam
		}
		key := s.Name + "{" + canonLabels(s.Labels) + "}"
		if series[key] {
			return fmt.Errorf("duplicate series %s", key)
		}
		series[key] = true
		isBucket := typ == "histogram" && strings.HasSuffix(s.Name, "_bucket")
		if !isBucket && s.Labels["le"] != "" {
			return fmt.Errorf("series %s carries the reserved le label outside a histogram bucket", key)
		}
		// Label-name hygiene: every series of a family must present the
		// same label keys (le excluded — it exists only on buckets), so a
		// labeled family (per-peer, per-shard) can be aggregated across
		// its values without holes.
		ks := labelKeySet(s.Labels)
		if prev, ok := famKeys[fam]; !ok {
			famKeys[fam] = ks
		} else if prev != ks {
			return fmt.Errorf("family %s mixes label key sets {%s} and {%s}", fam, prev, ks)
		}
		if typ == "histogram" {
			switch {
			case isBucket:
				if s.Labels["le"] == "" {
					return fmt.Errorf("histogram bucket %s lacks le label", key)
				}
				if s.Labels["le"] == "+Inf" {
					histInf[fam] = true
				}
			case strings.HasSuffix(s.Name, "_sum"), strings.HasSuffix(s.Name, "_count"):
				histParts[fam]++
			}
		}
	}
	for _, fam := range order {
		if exp.Types[fam] == "histogram" {
			if !histInf[fam] {
				return fmt.Errorf("histogram %s lacks a +Inf bucket", fam)
			}
			if histParts[fam] == 0 {
				return fmt.Errorf("histogram %s lacks _sum/_count", fam)
			}
		}
	}
	return nil
}

// labelKeySet renders a sample's label keys (le excluded) sorted and
// comma-joined, the family-consistency identity CheckExposition compares.
func labelKeySet(m map[string]string) string {
	keys := make([]string, 0, len(m))
	for k := range m {
		if k == "le" {
			continue
		}
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return strings.Join(keys, ",")
}

func canonLabels(m map[string]string) string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var b strings.Builder
	for i, k := range keys {
		if i > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, "%s=%q", k, m[k])
	}
	return b.String()
}
