package incll

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"incll/internal/obs"
)

// TestPhaseAttributionEndToEnd drives every instrumented phase at 1-in-1
// sampling and asserts the attribution surfaces — the typed snapshot and
// the Prometheus exposition — both carry it.
func TestPhaseAttributionEndToEnd(t *testing.T) {
	for _, shards := range []int{1, 2} {
		db, _ := Open(Options{Shards: shards, ArenaWords: 1 << 22, PhaseSampleEvery: 1})
		val := bytes.Repeat([]byte{7}, 64) // out-of-place: exercises the value heap
		for i := uint64(0); i < 300; i++ {
			if _, err := db.PutBytes(Key(i), val); err != nil {
				t.Fatal(err)
			}
			db.Get(Key(i))
		}
		db.Checkpoint()
		tx := db.Begin()
		tx.Put(Key(1), 11)
		tx.Put(Key(2), 22)
		if err := tx.Commit(); err != nil {
			t.Fatalf("shards=%d: commit: %v", shards, err)
		}
		db.Checkpoint()

		m := db.Metrics()
		if !m.Phases.Enabled || m.Phases.SampleEvery != 1 {
			t.Fatalf("shards=%d: phases = %+v", shards, m.Phases)
		}
		for _, ph := range []string{"descent", "epoch_wait", "guard_wait", "guard_hold", "commit_lock_wait", "fence", "alloc"} {
			if m.Phases.Hist[ph].Count == 0 {
				t.Fatalf("shards=%d: phase %q never recorded: %+v", shards, ph, m.Phases.Hist)
			}
		}
		// Every op lap is non-negative and descent covers ≥ the op count.
		if n := m.Phases.Hist["descent"].Count; n < 600 {
			t.Fatalf("shards=%d: descent count %d, want ≥600 (300 puts + 300 gets)", shards, n)
		}

		exp := scrape(t, db)
		var phaseSeries int
		for _, s := range exp.Samples {
			if s.Name == "incll_phase_seconds_count" {
				phaseSeries++
			}
		}
		if phaseSeries != int(obs.NumPhases) {
			t.Fatalf("shards=%d: exposition has %d phase series, want %d", shards, phaseSeries, obs.NumPhases)
		}

		// Attribution histograms survive a crash + reopen, like the trace.
		db.SimulateCrash(1.0, 1)
		db2, _ := db.Reopen()
		if n := db2.Metrics().Phases.Hist["descent"].Count; n < 600 {
			t.Fatalf("shards=%d: descent count %d after reopen, want carried over", shards, n)
		}
		db2.Close()
	}
}

// TestPhaseAttributionDisabled proves the negative option really turns
// the machinery off: no histograms, no exported series, nil PhaseSet on
// the hot path.
func TestPhaseAttributionDisabled(t *testing.T) {
	db, _ := Open(Options{ArenaWords: 1 << 22, PhaseSampleEvery: -1})
	defer db.Close()
	db.Put(Key(1), 1)
	db.Checkpoint()
	if m := db.Metrics(); m.Phases.Enabled || m.Phases.Hist != nil {
		t.Fatalf("attribution disabled but Metrics has %+v", m.Phases)
	}
	exp := scrape(t, db)
	for _, s := range exp.Samples {
		if strings.HasPrefix(s.Name, "incll_phase_seconds") {
			t.Fatalf("disabled attribution exported %s", s.Name)
		}
	}
}

// checkFlightDump asserts a dump directory is complete: all four
// artifacts present, non-empty, and the exposition well-formed.
func checkFlightDump(t *testing.T, dir string) {
	t.Helper()
	for _, name := range []string{"trace.txt", "metrics.prom", "metrics.json", "goroutines.txt"} {
		b, err := os.ReadFile(filepath.Join(dir, name))
		if err != nil {
			t.Fatalf("dump artifact %s: %v", name, err)
		}
		if len(b) == 0 {
			t.Fatalf("dump artifact %s is empty", name)
		}
		switch name {
		case "metrics.prom":
			if err := obs.CheckExposition(bytes.NewReader(b)); err != nil {
				t.Fatalf("dumped exposition lint: %v", err)
			}
		case "metrics.json":
			var m Metrics
			if err := json.Unmarshal(b, &m); err != nil {
				t.Fatalf("dumped metrics.json: %v", err)
			}
		case "goroutines.txt":
			if !strings.Contains(string(b), "goroutine") {
				t.Fatalf("goroutine profile looks wrong:\n%s", b)
			}
		}
	}
}

// TestFlightRecorderDump exercises DumpFlightRecord directly.
func TestFlightRecorderDump(t *testing.T) {
	db, _ := Open(Options{ArenaWords: 1 << 22, PhaseSampleEvery: 1})
	defer db.Close()
	for i := uint64(0); i < 100; i++ {
		db.Put(Key(i), i)
	}
	db.Checkpoint()
	dir, err := db.DumpFlightRecord(t.TempDir(), "manual")
	if err != nil {
		t.Fatalf("DumpFlightRecord: %v", err)
	}
	if !strings.Contains(filepath.Base(dir), "flight-manual-") {
		t.Fatalf("dump dir %q not reason-stamped", dir)
	}
	checkFlightDump(t, dir)
}

// TestWatchdogForcedAnomaly is the acceptance test: a threshold the
// workload is guaranteed to breach must produce one complete flight
// record, and the cooldown must hold further dumps back.
func TestWatchdogForcedAnomaly(t *testing.T) {
	db, _ := Open(Options{ArenaWords: 1 << 22, PhaseSampleEvery: 1})
	defer db.Close()

	dumps := make(chan string, 4)
	stop := db.StartWatchdog(WatchdogConfig{
		STWThreshold: time.Nanosecond, // any checkpoint breaches this
		Interval:     5 * time.Millisecond,
		Cooldown:     time.Hour, // exactly one dump for the whole test
		Dir:          t.TempDir(),
		OnDump:       func(dir, reason string) { dumps <- dir + "|" + reason },
	})
	defer stop()

	deadline := time.After(10 * time.Second)
	var got string
	for got == "" {
		for i := uint64(0); i < 50; i++ {
			db.Put(Key(i), i)
		}
		db.Checkpoint()
		select {
		case got = <-dumps:
		case <-deadline:
			t.Fatal("watchdog never fired on a guaranteed breach")
		default:
		}
	}
	dir, reason, _ := strings.Cut(got, "|")
	if reason != "stw" {
		t.Fatalf("dump reason %q, want stw", reason)
	}
	checkFlightDump(t, dir)

	// The trace carries the dump event, and the cooldown held: at most the
	// one dump already consumed.
	var sawEvent bool
	for _, ev := range db.TraceEvents() {
		if ev.Kind == obs.EvFlightDump {
			sawEvent = true
		}
	}
	if !sawEvent {
		t.Fatal("flight dump left no trace event")
	}
	for i := 0; i < 5; i++ {
		db.Checkpoint()
		time.Sleep(10 * time.Millisecond)
	}
	select {
	case d := <-dumps:
		t.Fatalf("cooldown violated: second dump %s", d)
	default:
	}
	stop()
	stop() // idempotent
}

// TestMetricsHistoryFacade drives the DB-level recorder: points
// accumulate in the background, counters get rates, and the JSON render
// is parseable.
func TestMetricsHistoryFacade(t *testing.T) {
	db, _ := Open(Options{ArenaWords: 1 << 22})
	defer db.Close()
	if db.MetricsHistory() != nil {
		t.Fatal("history non-empty before StartRecorder")
	}
	db.StartRecorder(5*time.Millisecond, 100)
	deadline := time.Now().Add(2 * time.Second)
	for len(db.MetricsHistory()) < 3 && time.Now().Before(deadline) {
		for i := uint64(0); i < 100; i++ {
			db.Put(Key(i), i)
		}
		time.Sleep(5 * time.Millisecond)
	}
	db.StopRecorder()
	hist := db.MetricsHistory()
	if len(hist) < 3 {
		t.Fatalf("recorder took %d points, want ≥3", len(hist))
	}
	last := hist[len(hist)-1]
	if last.Values["incll_keys"] != 100 {
		t.Fatalf("last point keys = %v, want 100", last.Values["incll_keys"])
	}
	var sawPutRate bool
	for _, p := range hist[1:] {
		for k := range p.Rates {
			if strings.HasPrefix(k, "incll_ops_total") {
				sawPutRate = true
			}
		}
	}
	if !sawPutRate {
		t.Fatal("no ops rate in any history point")
	}

	var buf bytes.Buffer
	if err := db.WriteMetricsHistory(&buf); err != nil {
		t.Fatalf("WriteMetricsHistory: %v", err)
	}
	var decoded []obs.HistoryPoint
	if err := json.Unmarshal(buf.Bytes(), &decoded); err != nil {
		t.Fatalf("history JSON: %v", err)
	}
	if len(decoded) != len(hist) {
		t.Fatalf("JSON has %d points, memory has %d", len(decoded), len(hist))
	}
}
