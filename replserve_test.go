package incll

import (
	"errors"
	"fmt"
	"net"
	"sync"
	"testing"
	"time"
)

// listenLoopback returns a fresh loopback TCP listener.
func listenLoopback(t *testing.T) net.Listener {
	t.Helper()
	lis, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatalf("listen: %v", err)
	}
	return lis
}

func serveRepl(t *testing.T, db *DB) *ReplServer {
	t.Helper()
	// Fast heartbeats for quick convergence, but a generous ack deadline:
	// under the race detector a follower applying a batch can go silent
	// for well over 4 heartbeats without being dead.
	rs, err := db.ServeReplication(listenLoopback(t), ReplServerOptions{
		Heartbeat: 20 * time.Millisecond,
		DeadAfter: 5 * time.Second,
	})
	if err != nil {
		t.Fatalf("ServeReplication: %v", err)
	}
	return rs
}

func followT(t *testing.T, addr string, o FollowerOptions) *Follower {
	t.Helper()
	if o.ReadyTimeout == 0 {
		o.ReadyTimeout = 15 * time.Second
	}
	if o.DeadAfter == 0 {
		o.DeadAfter = 300 * time.Millisecond
	}
	f, err := FollowPrimary(addr, o)
	if err != nil {
		t.Fatalf("FollowPrimary(%s): %v", addr, err)
	}
	return f
}

func waitCond(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(15 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %s", what)
		}
		time.Sleep(2 * time.Millisecond)
	}
}

// TestFollowPrimaryConverges bootstraps a networked follower and checks
// it converges to a byte-identical copy, then keeps up with live writes.
func TestFollowPrimaryConverges(t *testing.T) {
	db, _ := Open(Options{Shards: 2})
	defer db.Close()
	fillMatrix(t, db, 200, 1)
	db.Checkpoint()

	rs := serveRepl(t, db)
	f := followT(t, rs.Addr().String(), FollowerOptions{ID: "f1"})
	defer f.Close()

	// Bootstrap state matches.
	rel := db.ReleasedEpoch()
	if err := f.WaitWatermark(rel, 10*time.Second); err != nil {
		t.Fatalf("WaitWatermark(%d): %v", rel, err)
	}
	requireEqualDBs(t, db, f.DB())

	// Live writes stream through.
	for i := 0; i < 50; i++ {
		if _, err := db.PutBytes([]byte(fmt.Sprintf("live-%03d", i)), []byte("v")); err != nil {
			t.Fatal(err)
		}
		if i%10 == 0 {
			db.Checkpoint()
		}
	}
	db.Checkpoint()
	rel = db.ReleasedEpoch()
	if err := f.WaitWatermark(rel, 10*time.Second); err != nil {
		t.Fatalf("WaitWatermark(live %d): %v (applied %d)", rel, err, f.AppliedEpoch())
	}
	requireEqualDBs(t, db, f.DB())

	// Primary-side bookkeeping saw the follower.
	waitCond(t, "peer acked", func() bool {
		ps := rs.Peers()
		return len(ps) == 1 && ps[0].AckedEpoch >= rel
	})
}

// TestWatermarkReadRule pins the read contract: a follower never serves
// a read above its applied watermark, and a client that captured commit
// epoch E after its write always reads that write back once the
// follower's watermark reaches E.
func TestWatermarkReadRule(t *testing.T) {
	db, _ := Open(Options{})
	defer db.Close()
	if _, err := db.PutBytes([]byte("k0"), []byte("v0")); err != nil {
		t.Fatal(err)
	}
	db.Checkpoint()

	rs := serveRepl(t, db)
	f := followT(t, rs.Addr().String(), FollowerOptions{ID: "f1"})
	defer f.Close()

	// A demand above the watermark fails typed — never a stale value.
	future := f.AppliedEpoch() + 1000
	_, _, rerr := f.GetBytes([]byte("k0"), future)
	if !errors.Is(rerr, ErrReplicaLagging) {
		t.Fatalf("read above watermark: got err %v, want ErrReplicaLagging", rerr)
	}
	var lagErr *LagError
	if !errors.As(rerr, &lagErr) || lagErr.Need != future {
		t.Fatalf("lag error detail: %+v", rerr)
	}

	// Read-your-writes: write on the primary, capture E, read on the
	// follower at minEpoch E.
	if _, err := db.PutBytes([]byte("ryw"), []byte("mine")); err != nil {
		t.Fatal(err)
	}
	e := db.CurrentEpoch()
	db.Checkpoint()
	if err := f.WaitWatermark(e, 10*time.Second); err != nil {
		t.Fatalf("WaitWatermark(%d): %v", e, err)
	}
	v, ok, rerr := f.GetBytes([]byte("ryw"), e)
	if rerr != nil || !ok || string(v) != "mine" {
		t.Fatalf("read-your-writes: v=%q ok=%v err=%v", v, ok, rerr)
	}
}

// TestFollowerReadsSurviveRebootstrap is the use-after-close regression
// (run under -race in CI): GetBytes and View pin the current bootstrap
// generation, so a reconnect swapping in a fresh store must not close
// the old one under an in-flight reader. The replication server is
// bounced repeatedly while reader goroutines hammer the follower.
func TestFollowerReadsSurviveRebootstrap(t *testing.T) {
	db, _ := Open(Options{})
	defer db.Close()
	fillMatrix(t, db, 100, 1)
	if _, err := db.PutBytes([]byte("pinned"), []byte("v")); err != nil {
		t.Fatal(err)
	}
	db.Checkpoint()

	lis := listenLoopback(t)
	addr := lis.Addr().String()
	srvOpts := ReplServerOptions{Heartbeat: 20 * time.Millisecond, DeadAfter: 5 * time.Second}
	rs, err := db.ServeReplication(lis, srvOpts)
	if err != nil {
		t.Fatalf("ServeReplication: %v", err)
	}
	f := followT(t, addr, FollowerOptions{
		ID:           "f1",
		DeadAfter:    200 * time.Millisecond,
		ReconnectMin: 5 * time.Millisecond,
		ReconnectMax: 20 * time.Millisecond,
	})
	defer f.Close()

	stop := make(chan struct{})
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			k := []byte("pinned")
			for {
				select {
				case <-stop:
					return
				default:
				}
				if v, ok, err := f.GetBytes(k, 0); err == nil && (!ok || string(v) != "v") {
					t.Errorf("pinned read: v=%q ok=%v", v, ok)
					return
				}
				f.View(func(db *DB) { db.GetBytes(k) })
			}
		}()
	}

	// Each bounce kills the session; the follower re-bootstraps into a
	// fresh store, retiring the previous generation under the readers.
	for i := 0; i < 3; i++ {
		rs.Close()
		var lis2 net.Listener
		waitCond(t, "listener rebind", func() bool {
			l, err := net.Listen("tcp", addr)
			if err != nil {
				return false
			}
			lis2 = l
			return true
		})
		before := f.Reconnects()
		if rs, err = db.ServeReplication(lis2, srvOpts); err != nil {
			t.Fatalf("re-serve %d: %v", i, err)
		}
		waitCond(t, "follower re-bootstrapped", func() bool {
			return f.Connected() && f.Reconnects() > before
		})
	}
	close(stop)
	wg.Wait()
	rs.Close()

	if v, ok, err := f.GetBytes([]byte("pinned"), 0); err != nil || !ok || string(v) != "v" {
		t.Fatalf("read after churn: v=%q ok=%v err=%v", v, ok, err)
	}
}

// TestCloseDeliversFinalEpoch is the shutdown-hardening regression (run
// under -race in CI): a primary with live networked followers and
// in-process change subscribers is closed — concurrently, twice — and
// every follower still receives the complete stream through the final
// shutdown epoch before its connection ends.
func TestCloseDeliversFinalEpoch(t *testing.T) {
	db, _ := Open(Options{Shards: 2})
	fillMatrix(t, db, 100, 7)
	db.Checkpoint()

	rs := serveRepl(t, db)
	f1 := followT(t, rs.Addr().String(), FollowerOptions{ID: "f1"})
	defer f1.Close()
	f2 := followT(t, rs.Addr().String(), FollowerOptions{ID: "f2"})
	defer f2.Close()

	// An in-process subscriber rides along; Close must not deadlock or
	// race against it.
	changes := db.Changes()
	subDone := make(chan uint64, 1)
	go func() {
		var last uint64
		for {
			b, err := changes.Next()
			if err != nil {
				subDone <- last
				return
			}
			last = b.Epoch
		}
	}()

	// Writes that commit only at Close's final shutdown checkpoint: the
	// followers can only see them if the final epoch is released before
	// the listener and peer connections are torn down.
	for i := 0; i < 30; i++ {
		if _, err := db.PutBytes([]byte(fmt.Sprintf("final-%02d", i)), []byte("x")); err != nil {
			t.Fatal(err)
		}
	}

	var wg sync.WaitGroup
	for i := 0; i < 3; i++ { // concurrent + repeated Close: must be idempotent
		wg.Add(1)
		go func() {
			defer wg.Done()
			db.Close()
		}()
	}
	wg.Wait()
	db.Close() // and once more after the fact

	finalRel := db.ReleasedEpoch()
	select {
	case last := <-subDone:
		if last != finalRel {
			t.Fatalf("in-process subscriber drained to %d, want final %d", last, finalRel)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("in-process subscriber never finished")
	}
	for _, f := range []*Follower{f1, f2} {
		if err := f.WaitWatermark(finalRel, 10*time.Second); err != nil {
			t.Fatalf("follower missed final epoch: %v (applied %d, want %d)", err, f.AppliedEpoch(), finalRel)
		}
		requireEqualDBs(t, db, f.DB())
	}
}

// TestPromoteFailover kills the primary, promotes a follower, and has
// the second follower plus the revived old primary resync to the new
// one, all byte-identical.
func TestPromoteFailover(t *testing.T) {
	db, _ := Open(Options{Shards: 2})
	fillMatrix(t, db, 150, 3)
	db.Checkpoint()

	rs := serveRepl(t, db)
	f1 := followT(t, rs.Addr().String(), FollowerOptions{ID: "f1"})
	f2 := followT(t, rs.Addr().String(), FollowerOptions{ID: "f2"})
	rel := db.ReleasedEpoch()
	for _, f := range []*Follower{f1, f2} {
		if err := f.WaitWatermark(rel, 10*time.Second); err != nil {
			t.Fatal(err)
		}
	}

	// Primary dies hard.
	db.SimulateCrash(0.5, 99)
	waitCond(t, "follower noticed the dead primary", func() bool {
		down, d := f1.Down()
		return down && d > 100*time.Millisecond
	})

	// Promote f1; it becomes the serving primary.
	np, err := f1.Promote()
	if err != nil {
		t.Fatalf("Promote: %v", err)
	}
	defer np.Close()
	if _, err := f1.Promote(); err == nil {
		t.Fatal("second Promote should fail")
	}
	nrs := serveRepl(t, np)
	if _, err := np.PutBytes([]byte("post-failover"), []byte("new")); err != nil {
		t.Fatal(err)
	}
	np.Checkpoint()

	// The surviving follower re-points to the new primary (its old
	// session is dead; a fresh follow is the rejoin path).
	f2.Close()
	f2b := followT(t, nrs.Addr().String(), FollowerOptions{ID: "f2"})
	defer f2b.Close()

	// The old primary recovers and rejoins as a follower of the new one.
	old, _ := db.Reopen()
	oldF := followT(t, nrs.Addr().String(), FollowerOptions{ID: "old-primary"})
	old.Close() // rejoin is a fresh bootstrap; the recovered store retires

	nrel := np.ReleasedEpoch()
	for _, f := range []*Follower{f2b, oldF} {
		if err := f.WaitWatermark(nrel, 10*time.Second); err != nil {
			t.Fatal(err)
		}
		requireEqualDBs(t, np, f.DB())
	}
	if v, ok, err := oldF.GetBytes([]byte("post-failover"), nrel); err != nil || !ok || string(v) != "new" {
		t.Fatalf("rejoined old primary missing post-failover write: %q %v %v", v, ok, err)
	}
	oldF.Close()
	f2b.Close()
}

// TestServeReplicationOnClosedDB fails fast instead of serving a dead
// store.
func TestServeReplicationOnClosedDB(t *testing.T) {
	db, _ := Open(Options{})
	db.Close()
	if _, err := db.ServeReplication(listenLoopback(t), ReplServerOptions{}); err == nil {
		t.Fatal("ServeReplication on closed DB should fail")
	}
}
