package incll

import (
	"bytes"
	"encoding/binary"
	"errors"
	"math/rand"
	"sync"
	"testing"
	"time"

	"incll/internal/core"
	"incll/internal/epoch"
)

func TestFacadeQuickstartFlow(t *testing.T) {
	db, info := Open(Options{})
	if info.Status != epoch.FreshStart {
		t.Fatalf("status %v", info.Status)
	}
	for i := uint64(0); i < 1000; i++ {
		db.Put(Key(i), i*2)
	}
	db.Checkpoint()
	// Doomed work.
	for i := uint64(0); i < 1000; i++ {
		db.Put(Key(i), 0xDEAD)
	}
	db.SimulateCrash(0.5, 7)
	db2, info2 := db.Reopen()
	if info2.Status != epoch.CrashRecovered {
		t.Fatalf("reopen status %v", info2.Status)
	}
	for i := uint64(0); i < 1000; i++ {
		if v, ok := db2.Get(Key(i)); !ok || v != i*2 {
			t.Fatalf("key %d = %d,%v want %d", i, v, ok, i*2)
		}
	}
}

func TestFacadeCleanClose(t *testing.T) {
	db, _ := Open(Options{})
	db.Put([]byte("durable"), 1)
	db.Close()
	db.SimulateCrash(0, 1) // total power loss after clean shutdown
	db2, info := db.Reopen()
	if info.Status != epoch.CleanRestart {
		t.Fatalf("status %v", info.Status)
	}
	if v, ok := db2.Get([]byte("durable")); !ok || v != 1 {
		t.Fatalf("value lost: %d,%v", v, ok)
	}
	if n := db2.RebuildLen(); n != 1 {
		t.Fatalf("RebuildLen = %d", n)
	}
}

func TestFacadeScanAndHandles(t *testing.T) {
	db, _ := Open(Options{Workers: 2})
	h0, h1 := db.Handle(0), db.Handle(1)
	done := make(chan struct{})
	go func() {
		for i := uint64(0); i < 500; i++ {
			h0.Put(Key(i), i)
		}
		close(done)
	}()
	for i := uint64(500); i < 1000; i++ {
		h1.Put(Key(i), i)
	}
	<-done
	var n uint64
	db.Scan(nil, -1, func(k []byte, v uint64) bool {
		if v != n {
			t.Fatalf("scan value %d at position %d", v, n)
		}
		n++
		return true
	})
	if n != 1000 {
		t.Fatalf("scan visited %d", n)
	}
}

func TestFacadeCheckpointerTicker(t *testing.T) {
	db, _ := Open(Options{EpochInterval: 2e6})
	db.StartCheckpointer()
	for i := uint64(0); i < 50000; i++ {
		db.Put(Key(i%1000), i)
	}
	db.StopCheckpointer()
	if db.Stats().Puts.Load() != 50000 {
		t.Fatalf("puts = %d", db.Stats().Puts.Load())
	}
}

func TestFacadeNVMStats(t *testing.T) {
	db, _ := Open(Options{})
	db.Put(Key(1), 1)
	db.Checkpoint()
	s := db.NVMStats()
	if s.GlobalFlushes == 0 || s.LinesPersisted == 0 {
		t.Fatalf("stats: %v", s)
	}
}

func TestShardedFacadeCrashRecovery(t *testing.T) {
	db, info := Open(Options{Shards: 4})
	if info.Status != epoch.FreshStart || len(info.Shards) != 4 {
		t.Fatalf("open: status %v, %d shard infos", info.Status, len(info.Shards))
	}
	for i := uint64(0); i < 2000; i++ {
		db.Put(Key(i), i*2)
	}
	db.Checkpoint()
	// Doomed work.
	for i := uint64(0); i < 2000; i++ {
		db.Put(Key(i), 0xDEAD)
	}
	db.SimulateCrash(0.5, 7)
	db2, info2 := db.Reopen()
	if info2.Status != epoch.CrashRecovered {
		t.Fatalf("reopen status %v", info2.Status)
	}
	for i, sr := range info2.Shards {
		if sr.Epoch != info2.Shards[0].Epoch {
			t.Fatalf("shard %d recovered to epoch %d, shard 0 to %d", i, sr.Epoch, info2.Shards[0].Epoch)
		}
	}
	for i := uint64(0); i < 2000; i++ {
		if v, ok := db2.Get(Key(i)); !ok || v != i*2 {
			t.Fatalf("key %d = %d,%v want %d", i, v, ok, i*2)
		}
	}
}

func TestShardedFacadeScanMergesInOrder(t *testing.T) {
	db, _ := Open(Options{Shards: 4, Workers: 2})
	h0, h1 := db.Handle(0), db.Handle(1)
	done := make(chan struct{})
	go func() {
		for i := uint64(0); i < 500; i++ {
			h0.Put(Key(i), i)
		}
		close(done)
	}()
	for i := uint64(500); i < 1000; i++ {
		h1.Put(Key(i), i)
	}
	<-done
	var n uint64
	db.Scan(nil, -1, func(k []byte, v uint64) bool {
		if v != n {
			t.Fatalf("scan value %d at position %d", v, n)
		}
		n++
		return true
	})
	if n != 1000 {
		t.Fatalf("scan visited %d", n)
	}
	if db.Shards() != 4 {
		t.Fatalf("Shards() = %d", db.Shards())
	}
}

func TestShardedFacadeCleanClose(t *testing.T) {
	db, _ := Open(Options{Shards: 2})
	db.Put([]byte("durable"), 1)
	db.Close()
	db2, info := db.Reopen()
	if info.Status != epoch.CleanRestart {
		t.Fatalf("status %v", info.Status)
	}
	if v, ok := db2.Get([]byte("durable")); !ok || v != 1 {
		t.Fatalf("value lost: %d,%v", v, ok)
	}
	if n := db2.RebuildLen(); n != 1 {
		t.Fatalf("RebuildLen = %d", n)
	}
}

func TestShardedFacadeCheckpointerAndStats(t *testing.T) {
	db, _ := Open(Options{Shards: 2, EpochInterval: 2e6})
	db.StartCheckpointer()
	for i := uint64(0); i < 20000; i++ {
		db.Put(Key(i%1000), i)
	}
	db.StopCheckpointer()
	if db.Stats().Puts.Load() != 20000 {
		t.Fatalf("aggregate puts = %d", db.Stats().Puts.Load())
	}
	perShard := int64(0)
	for i := 0; i < db.Shards(); i++ {
		perShard += db.ShardStats(i).Puts.Load()
	}
	if perShard != 20000 {
		t.Fatalf("per-shard puts sum to %d", perShard)
	}
	db.Checkpoint()
	if s := db.NVMStats(); s.GlobalFlushes == 0 || s.LinesPersisted == 0 {
		t.Fatalf("stats: %v", s)
	}
}

func TestFacadeTxnCommitDurableAcrossCrash(t *testing.T) {
	for _, shards := range []int{1, 4} {
		db, _ := Open(Options{Shards: shards})
		for i := uint64(0); i < 8; i++ {
			db.Put(Key(i), 100)
		}
		db.Checkpoint()

		tx := db.Begin()
		a, _ := tx.Get(Key(0))
		b, _ := tx.Get(Key(1))
		tx.Put(Key(0), a-30)
		tx.Put(Key(1), b+30)
		if err := tx.Commit(); err != nil {
			t.Fatalf("shards=%d: commit: %v", shards, err)
		}
		if st := db.TxnStats(); st.Committed != 1 {
			t.Fatalf("shards=%d: committed = %d", shards, st.Committed)
		}

		db.SimulateCrash(0, 3) // lose every dirty line; no checkpoint ran
		db2, info := db.Reopen()
		if info.TxnsReplayed != 1 {
			t.Fatalf("shards=%d: replayed %d, want 1", shards, info.TxnsReplayed)
		}
		if v, _ := db2.Get(Key(0)); v != 70 {
			t.Fatalf("shards=%d: key 0 = %d, want 70", shards, v)
		}
		if v, _ := db2.Get(Key(1)); v != 130 {
			t.Fatalf("shards=%d: key 1 = %d, want 130", shards, v)
		}
	}
}

func TestFacadeApplyBatchAndAbort(t *testing.T) {
	db, _ := Open(Options{Shards: 2})
	b := &Batch{}
	b.Put(Key(1), 11)
	b.Put(Key(2), 22)
	b.Delete(Key(3))
	if err := db.Apply(b); err != nil {
		t.Fatalf("apply: %v", err)
	}
	if v, _ := db.Get(Key(1)); v != 11 {
		t.Fatalf("key 1 = %d", v)
	}
	if v, _ := db.Get(Key(2)); v != 22 {
		t.Fatalf("key 2 = %d", v)
	}

	tx := db.Begin()
	tx.Put(Key(9), 9)
	tx.Abort()
	if _, ok := db.Get(Key(9)); ok {
		t.Fatal("aborted write visible")
	}
}

func TestFacadeTxnConflict(t *testing.T) {
	db, _ := Open(Options{Workers: 2})
	db.Put(Key(1), 5)
	tx := db.BeginWorker(0)
	v, _ := tx.Get(Key(1))
	tx.Put(Key(1), v+1)

	tx2 := db.BeginWorker(1)
	tx2.Put(Key(1), 50)
	if err := tx2.Commit(); err != nil {
		t.Fatalf("tx2: %v", err)
	}
	if err := tx.Commit(); err != ErrConflict {
		t.Fatalf("commit = %v, want ErrConflict", err)
	}
	if st := db.TxnStats(); st.Conflicts != 1 {
		t.Fatalf("conflicts = %d", st.Conflicts)
	}
}

func TestFacadeTxnWithCheckpointerRunning(t *testing.T) {
	db, _ := Open(Options{Shards: 2, EpochInterval: 1e6})
	for i := uint64(0); i < 16; i++ {
		db.Put(Key(i), 1000)
	}
	db.StartCheckpointer()
	for i := 0; i < 2000; i++ {
		tx := db.Begin()
		a, _ := tx.Get(Key(uint64(i % 16)))
		b, _ := tx.Get(Key(uint64((i + 1) % 16)))
		tx.Put(Key(uint64(i%16)), a-1)
		tx.Put(Key(uint64((i+1)%16)), b+1)
		if err := tx.Commit(); err != nil {
			t.Fatalf("commit %d: %v", i, err)
		}
	}
	db.StopCheckpointer()
	var sum uint64
	for i := uint64(0); i < 16; i++ {
		v, _ := db.Get(Key(i))
		sum += v
	}
	if sum != 16*1000 {
		t.Fatalf("sum = %d", sum)
	}
}

func TestOptionsShardsValidation(t *testing.T) {
	// Shards beyond MaxShards used to clamp silently; now they are a typed
	// validation error — Validate returns it, Open panics with it.
	err := Options{Shards: MaxShards + 1}.Validate()
	if !errors.Is(err, ErrTooManyShards) {
		t.Fatalf("Validate() = %v, want ErrTooManyShards", err)
	}
	if err := (Options{Shards: MaxShards}).Validate(); err != nil {
		t.Fatalf("Validate(MaxShards) = %v", err)
	}
	defer func() {
		r := recover()
		err, ok := r.(error)
		if !ok || !errors.Is(err, ErrTooManyShards) {
			t.Fatalf("Open panicked with %v, want ErrTooManyShards", r)
		}
	}()
	Open(Options{Shards: MaxShards + 1})
	t.Fatal("Open accepted Shards > MaxShards")
}

func TestOpenBeyond64ShardsAndCrashRecover(t *testing.T) {
	// Regression for the old 64-shard ceiling: internal/txn encoded shard
	// lock/write sets as one uint64 bitmask, so a wider cluster used to
	// clamp. The generalized shard sets must open, commit cross-shard
	// transactions on, crash, and recover a 128-shard cluster.
	opts := Options{
		Shards:      128,
		Workers:     2,
		ArenaWords:  1 << 16,
		HeapWords:   1 << 15,
		LogSegWords: 1 << 12,
		TxnSegWords: 1 << 10,
	}
	db, info := Open(opts)
	if db.Shards() != 128 {
		t.Fatalf("Shards() = %d, want 128", db.Shards())
	}
	if len(info.Shards) != 128 {
		t.Fatalf("%d shard recovery infos", len(info.Shards))
	}
	for i := uint64(0); i < 500; i++ {
		db.Put(Key(i), i)
	}
	tx := db.Begin()
	v, _ := tx.Get(Key(1))
	tx.Put(Key(1), v+1)
	tx.Put(Key(499), 7)
	if err := tx.Commit(); err != nil {
		t.Fatalf("commit on 128-shard cluster: %v", err)
	}
	if v, _ := db.Get(Key(1)); v != 2 {
		t.Fatalf("key 1 = %d", v)
	}
	db.Checkpoint()
	db.SimulateCrash(0.5, 128128)
	db, rinfo := db.Reopen()
	if len(rinfo.Shards) != 128 {
		t.Fatalf("%d shard recovery infos after crash", len(rinfo.Shards))
	}
	if v, _ := db.Get(Key(1)); v != 2 {
		t.Fatalf("key 1 = %d after recovery", v)
	}
	if v, _ := db.Get(Key(499)); v != 7 {
		t.Fatalf("key 499 = %d after recovery", v)
	}
	n := db.Scan(nil, -1, func([]byte, uint64) bool { return true })
	if n != 500 {
		t.Fatalf("scan saw %d keys after recovery", n)
	}
	db.Close()
}

func TestOptionsShardedArenaDefaultHasFloor(t *testing.T) {
	// The shard-divided ArenaWords default must not underflow to a size
	// that cannot hold the per-shard regions.
	var o Options
	o.Shards = 64
	o.setDefaults()
	if o.ArenaWords < minShardArenaWords {
		t.Fatalf("default ArenaWords = %d below floor %d", o.ArenaWords, minShardArenaWords)
	}
}

func TestCheckpointerDoubleStartStop(t *testing.T) {
	// Regression: a second StartCheckpointer used to panic the process
	// ("epoch: ticker already running").
	for _, shards := range []int{1, 2} {
		db, _ := Open(Options{Shards: shards, EpochInterval: 2e6})
		db.StartCheckpointer()
		db.StartCheckpointer() // must be a no-op, not a panic
		for i := uint64(0); i < 5000; i++ {
			db.Put(Key(i%100), i)
		}
		db.StopCheckpointer()
		db.StopCheckpointer() // idempotent
		db.Close()            // stops the (already stopped) ticker again
	}
}

func TestFacadeByteValuesEndToEnd(t *testing.T) {
	for _, shards := range []int{1, 4} {
		db, _ := Open(Options{Shards: shards})
		sizes := []int{0, 1, 5, 6, 8, 100, 1024, MaxValueBytes}
		for i, n := range sizes {
			v := make([]byte, n)
			for j := range v {
				v[j] = byte(i + j)
			}
			if ok, err := db.PutBytes(Key(uint64(i)), v); !ok || err != nil {
				t.Fatalf("shards=%d: key %d not inserted (%v)", shards, i, err)
			}
		}
		db.Checkpoint()
		db.SimulateCrash(0.5, 99)
		db2, _ := db.Reopen()
		for i, n := range sizes {
			got, ok := db2.GetBytes(Key(uint64(i)))
			if !ok || len(got) != n {
				t.Fatalf("shards=%d: key %d → %d bytes, %v; want %d", shards, i, len(got), ok, n)
			}
			for j, c := range got {
				if c != byte(i+j) {
					t.Fatalf("shards=%d: key %d byte %d = %d, want %d (torn value)", shards, i, j, c, byte(i+j))
				}
			}
		}
		// The uint64 view decodes the first eight bytes, big-endian: key 3
		// holds the 6-byte value {3,4,5,6,7,8}.
		if v, ok := db2.Get(Key(3)); !ok || v != 0x030405060708 {
			t.Fatalf("shards=%d: uint64 view = %#x, %v", shards, v, ok)
		}
		var scanned int
		db2.ScanBytes(nil, -1, func(k, v []byte) bool {
			scanned++
			return true
		})
		if scanned != len(sizes) {
			t.Fatalf("shards=%d: scanned %d keys, want %d", shards, scanned, len(sizes))
		}
	}
}

func TestFacadeUintAndByteViewsAgree(t *testing.T) {
	db, _ := Open(Options{})
	db.Put(Key(1), 258)
	if b, ok := db.GetBytes(Key(1)); !ok || len(b) != 2 || b[0] != 1 || b[1] != 2 {
		t.Fatalf("GetBytes after Put(258) = %v, %v", b, ok)
	}
	db.PutBytes(Key(2), []byte{3, 4, 5})
	if v, ok := db.Get(Key(2)); !ok || v != 0x030405 {
		t.Fatalf("Get after PutBytes = %#x, %v", v, ok)
	}
	// Large uint64s round-trip through the heap path.
	db.Put(Key(3), 1<<63|12345)
	if v, _ := db.Get(Key(3)); v != 1<<63|12345 {
		t.Fatalf("large uint64 = %#x", v)
	}
}

func TestFacadeTxnByteValues(t *testing.T) {
	for _, shards := range []int{1, 2} {
		db, _ := Open(Options{Shards: shards})
		big := make([]byte, 2000)
		for i := range big {
			big[i] = byte(i * 7)
		}
		db.PutBytes(Key(0), []byte("before"))
		db.Checkpoint()

		tx := db.Begin()
		if v, ok := tx.GetBytes(Key(0)); !ok || string(v) != "before" {
			t.Fatalf("shards=%d: txn read %q, %v", shards, v, ok)
		}
		tx.PutBytes(Key(0), big)
		tx.PutBytes(Key(1), []byte("small"))
		if err := tx.Commit(); err != nil {
			t.Fatalf("shards=%d: commit: %v", shards, err)
		}

		// The commit is durable now: lose every dirty line.
		db.SimulateCrash(0, 5)
		db2, info := db.Reopen()
		if info.TxnsReplayed != 1 {
			t.Fatalf("shards=%d: replayed %d txns, want 1", shards, info.TxnsReplayed)
		}
		if v, ok := db2.GetBytes(Key(0)); !ok || !bytes.Equal(v, big) {
			t.Fatalf("shards=%d: big value lost or torn after replay (%d bytes, %v)", shards, len(v), ok)
		}
		if v, _ := db2.GetBytes(Key(1)); string(v) != "small" {
			t.Fatalf("shards=%d: small value = %q", shards, v)
		}
	}
}

// TestShardedScanMatchesUnshardedBytes applies one deterministic op
// sequence with variable-length values (the -valuesize 1024 shape) to an
// unsharded and a sharded DB and asserts the full ScanBytes streams are
// byte-identical — the acceptance criterion that sharding never changes
// observable contents.
func TestShardedScanMatchesUnshardedBytes(t *testing.T) {
	run := func(shards int) (keys, vals [][]byte) {
		db, _ := Open(Options{Shards: shards})
		defer db.Close()
		rng := rand.New(rand.NewSource(42))
		for i := 0; i < 3000; i++ {
			k := Key(uint64(rng.Intn(800)))
			switch rng.Intn(10) {
			case 0:
				db.Delete(k)
			default:
				v := make([]byte, rng.Intn(1025))
				for j := range v {
					v[j] = byte(rng.Intn(256))
				}
				db.PutBytes(k, v)
			}
			if i%500 == 0 {
				db.Checkpoint()
			}
		}
		db.ScanBytes(nil, -1, func(k, v []byte) bool {
			keys = append(keys, append([]byte(nil), k...))
			vals = append(vals, append([]byte(nil), v...))
			return true
		})
		return
	}
	k1, v1 := run(1)
	k4, v4 := run(4)
	if len(k1) != len(k4) {
		t.Fatalf("unsharded scan has %d keys, sharded %d", len(k1), len(k4))
	}
	for i := range k1 {
		if !bytes.Equal(k1[i], k4[i]) {
			t.Fatalf("scan key %d differs: %x vs %x", i, k1[i], k4[i])
		}
		if !bytes.Equal(v1[i], v4[i]) {
			t.Fatalf("scan value for key %x differs (%d vs %d bytes)", k1[i], len(v1[i]), len(v4[i]))
		}
	}
}

// TestConcurrentScanWritersAndTicks races DB.Scan against writers and the
// background checkpointer on a sharded DB (run under -race in CI): the
// k-way-merge cursor refills while epochs advance. Scans must stay ordered
// and every value must be one some writer wrote for that key.
func TestConcurrentScanWritersAndTicks(t *testing.T) {
	db, _ := Open(Options{Shards: 4, Workers: 3, EpochInterval: 1e6})
	const keyspace = 2000
	for i := uint64(0); i < keyspace; i++ {
		db.Put(Key(i), i)
	}
	db.StartCheckpointer()
	defer db.Close()

	iters := 40
	if testing.Short() {
		iters = 10
	}
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for w := 0; w < 2; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			h := db.Handle(w)
			rng := rand.New(rand.NewSource(int64(w) * 7))
			lo := uint64(w) * (keyspace / 2)
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				k := lo + uint64(rng.Intn(keyspace/2))
				if rng.Intn(10) == 0 {
					h.Delete(Key(k))
				} else {
					// The low bits always encode the key, so readers can
					// validate any observed version.
					h.Put(Key(k), uint64(i)<<16|k&0xFFFF)
				}
			}
		}(w)
	}

	scanner := db.Handle(2)
	for i := 0; i < iters; i++ {
		var prev []byte
		n := 0
		scanner.Scan(nil, -1, func(k []byte, v uint64) bool {
			if n > 0 && bytes.Compare(k, prev) <= 0 {
				t.Errorf("scan order violated at key %x", k)
				return false
			}
			prev = append(prev[:0], k...)
			n++
			ik := binary.BigEndian.Uint64(k)
			if v&0xFFFF != ik&0xFFFF && v != ik {
				t.Errorf("key %d scanned with foreign value %#x", ik, v)
				return false
			}
			return true
		})
		// Interleave bounded byte scans to refill mid-keyspace.
		scanner.ScanBytes(Key(uint64(i*13%keyspace)), 64, func(k, v []byte) bool { return true })
	}
	close(stop)
	wg.Wait()
}

// ---- PR 4: first-class snapshot cursors ----

// TestIteratorAdapters exercises the range-over-func surface: All, Range,
// Iter (reverse), and the equivalence of all of them with the manual
// cursor, on both an unsharded and a sharded DB.
func TestIteratorAdapters(t *testing.T) {
	for _, shards := range []int{1, 3} {
		db, _ := Open(Options{Shards: shards})
		const n = 500
		for i := uint64(0); i < n; i++ {
			db.Put(Key(i), i+1)
		}
		var keys, vals []uint64
		for k, v := range db.All() {
			keys = append(keys, binary.BigEndian.Uint64(k))
			vals = append(vals, core.DecodeValue(v))
		}
		if len(keys) != n {
			t.Fatalf("shards=%d: All yielded %d keys", shards, len(keys))
		}
		for i, k := range keys {
			if k != uint64(i) || vals[i] != k+1 {
				t.Fatalf("shards=%d: All entry %d = (%d, %d)", shards, i, k, vals[i])
			}
		}
		// All can be ranged more than once.
		count := 0
		for range db.All() {
			count++
		}
		if count != n {
			t.Fatalf("shards=%d: second range over All saw %d keys", shards, count)
		}
		// Range honours [lo, hi).
		got := []uint64{}
		for k := range db.Range(Key(10), Key(20)) {
			got = append(got, binary.BigEndian.Uint64(k))
		}
		if len(got) != 10 || got[0] != 10 || got[9] != 19 {
			t.Fatalf("shards=%d: Range(10, 20) = %v", shards, got)
		}
		// Reverse adapter: descending, same bounds.
		got = got[:0]
		for k := range db.Iter(IterOptions{LowerBound: Key(10), UpperBound: Key(20), Reverse: true}) {
			got = append(got, binary.BigEndian.Uint64(k))
		}
		if len(got) != 10 || got[0] != 19 || got[9] != 10 {
			t.Fatalf("shards=%d: reverse Range = %v", shards, got)
		}
		// Early break closes cleanly and a new range still works.
		count = 0
		for range db.All() {
			count++
			if count == 7 {
				break
			}
		}
		for range db.All() {
			count++
		}
		if count != 7+n {
			t.Fatalf("shards=%d: range after early break saw %d", shards, count-7)
		}
		db.Close()
	}
}

// TestTxnAllSeesOwnWrites: the Txn adapter shows pending writes overlaid
// on the committed state.
func TestTxnAllSeesOwnWrites(t *testing.T) {
	db, _ := Open(Options{})
	db.Put(Key(1), 1)
	db.Put(Key(2), 2)
	db.Put(Key(3), 3)
	tx := db.Begin()
	tx.Put(Key(2), 22) // overwrite
	tx.Delete(Key(3))  // hide
	tx.Put(Key(4), 44) // fresh insert
	want := map[uint64]uint64{1: 1, 2: 22, 4: 44}
	seen := map[uint64]uint64{}
	prev := int64(-1)
	for k, v := range tx.All() {
		ik := int64(binary.BigEndian.Uint64(k))
		if ik <= prev {
			t.Fatalf("Txn.All order violated at %d", ik)
		}
		prev = ik
		seen[uint64(ik)] = core.DecodeValue(v)
	}
	if len(seen) != len(want) {
		t.Fatalf("Txn.All saw %v, want %v", seen, want)
	}
	for k, v := range want {
		if seen[k] != v {
			t.Fatalf("Txn.All[%d] = %d, want %d", k, seen[k], v)
		}
	}
	tx.Abort()
	// After Abort, the store is untouched.
	if v, _ := db.Get(Key(2)); v != 2 {
		t.Fatalf("aborted write leaked: %d", v)
	}
}

// TestScanWrapperMatchesIterator: the rebased legacy Scan and the cursor
// observe identical streams.
func TestScanWrapperMatchesIterator(t *testing.T) {
	db, _ := Open(Options{Shards: 2})
	rng := rand.New(rand.NewSource(3))
	for i := 0; i < 2000; i++ {
		db.Put(Key(uint64(rng.Intn(1000))), uint64(i))
	}
	var sk []uint64
	db.Scan(nil, -1, func(k []byte, v uint64) bool {
		sk = append(sk, binary.BigEndian.Uint64(k))
		return true
	})
	it := db.NewIter(IterOptions{})
	defer it.Close()
	i := 0
	for ok := it.First(); ok; ok = it.Next() {
		if i >= len(sk) || binary.BigEndian.Uint64(it.Key()) != sk[i] {
			t.Fatalf("entry %d diverges", i)
		}
		i++
	}
	if i != len(sk) {
		t.Fatalf("cursor saw %d keys, Scan %d", i, len(sk))
	}
	// Scan's max and early-stop contracts survive the rebase.
	n := db.Scan(Key(sk[2]), 5, func([]byte, uint64) bool { return true })
	if n != 5 {
		t.Fatalf("Scan max=5 visited %d", n)
	}
	n = db.Scan(nil, -1, func([]byte, uint64) bool { return false })
	if n != 1 {
		t.Fatalf("Scan early-stop visited %d", n)
	}
}

// TestFacadeSizeLimitErrors: the byte-value paths return (not panic)
// ErrValueTooLarge / ErrKeyTooLarge, and the txn path is errors.Is
// compatible with them.
func TestFacadeSizeLimitErrors(t *testing.T) {
	db, _ := Open(Options{})
	big := make([]byte, MaxValueBytes+1)
	longKey := make([]byte, MaxKeyBytes+1)

	if _, err := db.PutBytes(Key(1), big); !errors.Is(err, ErrValueTooLarge) {
		t.Fatalf("DB.PutBytes oversize value: %v", err)
	}
	if _, err := db.PutBytes(longKey, []byte("v")); !errors.Is(err, ErrKeyTooLarge) {
		t.Fatalf("DB.PutBytes oversize key: %v", err)
	}
	if _, err := db.Handle(0).PutBytes(Key(1), big); !errors.Is(err, ErrValueTooLarge) {
		t.Fatalf("Handle.PutBytes oversize value: %v", err)
	}
	if _, ok := db.GetBytes(Key(1)); ok {
		t.Fatal("rejected value was stored")
	}

	// Batch: poisoned at PutBytes, reported by Apply, nothing applied.
	b := &Batch{}
	b.Put(Key(5), 5)
	b.PutBytes(Key(6), big)
	if err := db.Apply(b); !errors.Is(err, ErrValueTooLarge) {
		t.Fatalf("Apply poisoned batch: %v", err)
	}
	if _, ok := db.Get(Key(5)); ok {
		t.Fatal("poisoned batch applied a write")
	}

	// Txn: poisoned at PutBytes, Commit errors.Is-compatible.
	tx := db.Begin()
	tx.Put(Key(7), 7)
	tx.PutBytes(Key(8), big)
	if err := tx.Commit(); !errors.Is(err, ErrValueTooLarge) {
		t.Fatalf("Txn.Commit oversize value: %v", err)
	}
	if _, ok := db.Get(Key(7)); ok {
		t.Fatal("poisoned txn applied a write")
	}
	tx = db.Begin()
	tx.Put(longKey, 1)
	if err := tx.Commit(); !errors.Is(err, ErrKeyTooLarge) {
		t.Fatalf("Txn.Commit oversize key: %v", err)
	}

	// A max-sized pair is accepted everywhere.
	if _, err := db.PutBytes(make([]byte, MaxKeyBytes), make([]byte, MaxValueBytes)); err != nil {
		t.Fatalf("max-sized pair rejected: %v", err)
	}
}

// TestIteratorVsWritersVsTicker races a full-table cursor against
// concurrent writers and the background checkpoint ticker (run under
// -race in CI). The cursor must stay ordered and never block an epoch
// advance for longer than one batch — the run finishing at all, with the
// 1 ms ticker live, is the liveness half of that claim.
func TestIteratorVsWritersVsTicker(t *testing.T) {
	for _, shards := range []int{1, 4} {
		db, _ := Open(Options{Shards: shards, Workers: 3, EpochInterval: time.Millisecond})
		const n = 20000
		for i := uint64(0); i < n; i++ {
			db.Put(Key(i), i)
		}
		db.Checkpoint()
		db.StartCheckpointer()

		stop := make(chan struct{})
		var wg sync.WaitGroup
		for w := 1; w <= 2; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				h := db.Handle(w)
				rng := rand.New(rand.NewSource(int64(w)))
				for {
					select {
					case <-stop:
						return
					default:
					}
					k := uint64(rng.Intn(n))
					switch rng.Intn(3) {
					case 0:
						h.Delete(Key(k))
					default:
						h.Put(Key(k), rng.Uint64()%(1<<40))
					}
				}
			}(w)
		}

		for round := 0; round < 3; round++ {
			it := db.Handle(0).NewIter(IterOptions{})
			var prev []byte
			count := 0
			for ok := it.First(); ok; ok = it.Next() {
				if prev != nil && bytes.Compare(it.Key(), prev) <= 0 {
					t.Fatalf("shards=%d: cursor order violated under churn", shards)
				}
				prev = append(prev[:0], it.Key()...)
				count++
			}
			it.Close()
			if count == 0 {
				t.Fatalf("shards=%d: cursor saw nothing", shards)
			}
			// And a reverse pass under the same churn.
			it = db.Handle(0).NewIter(IterOptions{})
			prev = nil
			for ok := it.Last(); ok; ok = it.Prev() {
				if prev != nil && bytes.Compare(it.Key(), prev) >= 0 {
					t.Fatalf("shards=%d: reverse cursor order violated under churn", shards)
				}
				prev = append(prev[:0], it.Key()...)
			}
			it.Close()
		}
		close(stop)
		wg.Wait()
		db.Close()
	}
}
