package incll

import (
	"testing"

	"incll/internal/epoch"
)

func TestFacadeQuickstartFlow(t *testing.T) {
	db, info := Open(Options{})
	if info.Status != epoch.FreshStart {
		t.Fatalf("status %v", info.Status)
	}
	for i := uint64(0); i < 1000; i++ {
		db.Put(Key(i), i*2)
	}
	db.Checkpoint()
	// Doomed work.
	for i := uint64(0); i < 1000; i++ {
		db.Put(Key(i), 0xDEAD)
	}
	db.SimulateCrash(0.5, 7)
	db2, info2 := db.Reopen()
	if info2.Status != epoch.CrashRecovered {
		t.Fatalf("reopen status %v", info2.Status)
	}
	for i := uint64(0); i < 1000; i++ {
		if v, ok := db2.Get(Key(i)); !ok || v != i*2 {
			t.Fatalf("key %d = %d,%v want %d", i, v, ok, i*2)
		}
	}
}

func TestFacadeCleanClose(t *testing.T) {
	db, _ := Open(Options{})
	db.Put([]byte("durable"), 1)
	db.Close()
	db.SimulateCrash(0, 1) // total power loss after clean shutdown
	db2, info := db.Reopen()
	if info.Status != epoch.CleanRestart {
		t.Fatalf("status %v", info.Status)
	}
	if v, ok := db2.Get([]byte("durable")); !ok || v != 1 {
		t.Fatalf("value lost: %d,%v", v, ok)
	}
	if n := db2.RebuildLen(); n != 1 {
		t.Fatalf("RebuildLen = %d", n)
	}
}

func TestFacadeScanAndHandles(t *testing.T) {
	db, _ := Open(Options{Workers: 2})
	h0, h1 := db.Handle(0), db.Handle(1)
	done := make(chan struct{})
	go func() {
		for i := uint64(0); i < 500; i++ {
			h0.Put(Key(i), i)
		}
		close(done)
	}()
	for i := uint64(500); i < 1000; i++ {
		h1.Put(Key(i), i)
	}
	<-done
	var n uint64
	db.Scan(nil, -1, func(k []byte, v uint64) bool {
		if v != n {
			t.Fatalf("scan value %d at position %d", v, n)
		}
		n++
		return true
	})
	if n != 1000 {
		t.Fatalf("scan visited %d", n)
	}
}

func TestFacadeCheckpointerTicker(t *testing.T) {
	db, _ := Open(Options{EpochInterval: 2e6})
	db.StartCheckpointer()
	for i := uint64(0); i < 50000; i++ {
		db.Put(Key(i%1000), i)
	}
	db.StopCheckpointer()
	if db.Stats().Puts.Load() != 50000 {
		t.Fatalf("puts = %d", db.Stats().Puts.Load())
	}
}

func TestFacadeNVMStats(t *testing.T) {
	db, _ := Open(Options{})
	db.Put(Key(1), 1)
	db.Checkpoint()
	s := db.NVMStats()
	if s.GlobalFlushes == 0 || s.LinesPersisted == 0 {
		t.Fatalf("stats: %v", s)
	}
}

func TestShardedFacadeCrashRecovery(t *testing.T) {
	db, info := Open(Options{Shards: 4})
	if info.Status != epoch.FreshStart || len(info.Shards) != 4 {
		t.Fatalf("open: status %v, %d shard infos", info.Status, len(info.Shards))
	}
	for i := uint64(0); i < 2000; i++ {
		db.Put(Key(i), i*2)
	}
	db.Checkpoint()
	// Doomed work.
	for i := uint64(0); i < 2000; i++ {
		db.Put(Key(i), 0xDEAD)
	}
	db.SimulateCrash(0.5, 7)
	db2, info2 := db.Reopen()
	if info2.Status != epoch.CrashRecovered {
		t.Fatalf("reopen status %v", info2.Status)
	}
	for i, sr := range info2.Shards {
		if sr.Epoch != info2.Shards[0].Epoch {
			t.Fatalf("shard %d recovered to epoch %d, shard 0 to %d", i, sr.Epoch, info2.Shards[0].Epoch)
		}
	}
	for i := uint64(0); i < 2000; i++ {
		if v, ok := db2.Get(Key(i)); !ok || v != i*2 {
			t.Fatalf("key %d = %d,%v want %d", i, v, ok, i*2)
		}
	}
}

func TestShardedFacadeScanMergesInOrder(t *testing.T) {
	db, _ := Open(Options{Shards: 4, Workers: 2})
	h0, h1 := db.Handle(0), db.Handle(1)
	done := make(chan struct{})
	go func() {
		for i := uint64(0); i < 500; i++ {
			h0.Put(Key(i), i)
		}
		close(done)
	}()
	for i := uint64(500); i < 1000; i++ {
		h1.Put(Key(i), i)
	}
	<-done
	var n uint64
	db.Scan(nil, -1, func(k []byte, v uint64) bool {
		if v != n {
			t.Fatalf("scan value %d at position %d", v, n)
		}
		n++
		return true
	})
	if n != 1000 {
		t.Fatalf("scan visited %d", n)
	}
	if db.Shards() != 4 {
		t.Fatalf("Shards() = %d", db.Shards())
	}
}

func TestShardedFacadeCleanClose(t *testing.T) {
	db, _ := Open(Options{Shards: 2})
	db.Put([]byte("durable"), 1)
	db.Close()
	db2, info := db.Reopen()
	if info.Status != epoch.CleanRestart {
		t.Fatalf("status %v", info.Status)
	}
	if v, ok := db2.Get([]byte("durable")); !ok || v != 1 {
		t.Fatalf("value lost: %d,%v", v, ok)
	}
	if n := db2.RebuildLen(); n != 1 {
		t.Fatalf("RebuildLen = %d", n)
	}
}

func TestShardedFacadeCheckpointerAndStats(t *testing.T) {
	db, _ := Open(Options{Shards: 2, EpochInterval: 2e6})
	db.StartCheckpointer()
	for i := uint64(0); i < 20000; i++ {
		db.Put(Key(i%1000), i)
	}
	db.StopCheckpointer()
	if db.Stats().Puts.Load() != 20000 {
		t.Fatalf("aggregate puts = %d", db.Stats().Puts.Load())
	}
	perShard := int64(0)
	for i := 0; i < db.Shards(); i++ {
		perShard += db.ShardStats(i).Puts.Load()
	}
	if perShard != 20000 {
		t.Fatalf("per-shard puts sum to %d", perShard)
	}
	db.Checkpoint()
	if s := db.NVMStats(); s.GlobalFlushes == 0 || s.LinesPersisted == 0 {
		t.Fatalf("stats: %v", s)
	}
}

func TestFacadeTxnCommitDurableAcrossCrash(t *testing.T) {
	for _, shards := range []int{1, 4} {
		db, _ := Open(Options{Shards: shards})
		for i := uint64(0); i < 8; i++ {
			db.Put(Key(i), 100)
		}
		db.Checkpoint()

		tx := db.Begin()
		a, _ := tx.Get(Key(0))
		b, _ := tx.Get(Key(1))
		tx.Put(Key(0), a-30)
		tx.Put(Key(1), b+30)
		if err := tx.Commit(); err != nil {
			t.Fatalf("shards=%d: commit: %v", shards, err)
		}
		if st := db.TxnStats(); st.Committed != 1 {
			t.Fatalf("shards=%d: committed = %d", shards, st.Committed)
		}

		db.SimulateCrash(0, 3) // lose every dirty line; no checkpoint ran
		db2, info := db.Reopen()
		if info.TxnsReplayed != 1 {
			t.Fatalf("shards=%d: replayed %d, want 1", shards, info.TxnsReplayed)
		}
		if v, _ := db2.Get(Key(0)); v != 70 {
			t.Fatalf("shards=%d: key 0 = %d, want 70", shards, v)
		}
		if v, _ := db2.Get(Key(1)); v != 130 {
			t.Fatalf("shards=%d: key 1 = %d, want 130", shards, v)
		}
	}
}

func TestFacadeApplyBatchAndAbort(t *testing.T) {
	db, _ := Open(Options{Shards: 2})
	b := &Batch{}
	b.Put(Key(1), 11)
	b.Put(Key(2), 22)
	b.Delete(Key(3))
	if err := db.Apply(b); err != nil {
		t.Fatalf("apply: %v", err)
	}
	if v, _ := db.Get(Key(1)); v != 11 {
		t.Fatalf("key 1 = %d", v)
	}
	if v, _ := db.Get(Key(2)); v != 22 {
		t.Fatalf("key 2 = %d", v)
	}

	tx := db.Begin()
	tx.Put(Key(9), 9)
	tx.Abort()
	if _, ok := db.Get(Key(9)); ok {
		t.Fatal("aborted write visible")
	}
}

func TestFacadeTxnConflict(t *testing.T) {
	db, _ := Open(Options{Workers: 2})
	db.Put(Key(1), 5)
	tx := db.BeginWorker(0)
	v, _ := tx.Get(Key(1))
	tx.Put(Key(1), v+1)

	tx2 := db.BeginWorker(1)
	tx2.Put(Key(1), 50)
	if err := tx2.Commit(); err != nil {
		t.Fatalf("tx2: %v", err)
	}
	if err := tx.Commit(); err != ErrConflict {
		t.Fatalf("commit = %v, want ErrConflict", err)
	}
	if st := db.TxnStats(); st.Conflicts != 1 {
		t.Fatalf("conflicts = %d", st.Conflicts)
	}
}

func TestFacadeTxnWithCheckpointerRunning(t *testing.T) {
	db, _ := Open(Options{Shards: 2, EpochInterval: 1e6})
	for i := uint64(0); i < 16; i++ {
		db.Put(Key(i), 1000)
	}
	db.StartCheckpointer()
	for i := 0; i < 2000; i++ {
		tx := db.Begin()
		a, _ := tx.Get(Key(uint64(i % 16)))
		b, _ := tx.Get(Key(uint64((i + 1) % 16)))
		tx.Put(Key(uint64(i%16)), a-1)
		tx.Put(Key(uint64((i+1)%16)), b+1)
		if err := tx.Commit(); err != nil {
			t.Fatalf("commit %d: %v", i, err)
		}
	}
	db.StopCheckpointer()
	var sum uint64
	for i := uint64(0); i < 16; i++ {
		v, _ := db.Get(Key(i))
		sum += v
	}
	if sum != 16*1000 {
		t.Fatalf("sum = %d", sum)
	}
}
