package incll_test

// One benchmark per figure of the paper's evaluation (§6). These are the
// testing.B building blocks; `cmd/incll-bench` runs the full multi-thread
// figure sweeps and prints the same series the paper plots.
//
// Setup (tree preload) happens outside the timer; the measured region is
// the operation stream of the figure's workload.

import (
	"fmt"
	"testing"
	"time"

	"incll"
	"incll/internal/core"
	"incll/internal/harness"
	"incll/internal/masstree"
	"incll/internal/nvm"
	"incll/internal/ycsb"
)

const (
	benchTreeSize = 100_000
	benchInterval = 16 * time.Millisecond
)

// benchTarget abstracts the four systems for the op loop.
type benchTarget struct {
	put  func(k []byte, v uint64)
	get  func(k []byte)
	scan func(k []byte)
	stop func()
	// durable-only introspection
	loggedNodes func() int64
}

func setupTransient(b *testing.B, mode harness.Mode) benchTarget {
	b.Helper()
	var tr *masstree.Tree
	stop := func() {}
	if mode == harness.MTPlus {
		bar := masstree.NewBarrier()
		pool := masstree.NewPool(1, bar)
		tr = masstree.NewWithPool(pool, bar)
		done := make(chan struct{})
		go func() {
			t := time.NewTicker(benchInterval)
			defer t.Stop()
			for {
				select {
				case <-t.C:
					bar.Advance()
				case <-done:
					return
				}
			}
		}()
		stop = func() { close(done) }
	} else {
		tr = masstree.New()
	}
	for i := uint64(0); i < benchTreeSize; i++ {
		tr.Put(masstree.EncodeUint64(i), i)
	}
	h := tr.Handle(0)
	return benchTarget{
		put:  func(k []byte, v uint64) { h.Put(k, v) },
		get:  func(k []byte) { h.Get(k) },
		scan: func(k []byte) { h.Scan(k, ycsb.ScanLength, func([]byte, uint64) bool { return true }) },
		stop: stop,
	}
}

func setupDurable(b *testing.B, disableInCLL bool, fence time.Duration) benchTarget {
	b.Helper()
	cfg := harness.RunConfig{TreeSize: benchTreeSize, Threads: 1}
	arenaWords, heapWords, segWords := harness.SizeArena(cfg)
	a := nvm.New(nvm.Config{Words: arenaWords, FenceDelay: fence})
	s, _ := core.Open(a, core.Config{
		Workers: 1, LogSegWords: segWords, HeapWords: heapWords, DisableInCLL: disableInCLL,
	})
	for i := uint64(0); i < benchTreeSize; i++ {
		s.Put(core.EncodeUint64(i), i)
	}
	s.Advance()
	s.StartTicker(benchInterval)
	h := s.Handle(0)
	return benchTarget{
		put:         func(k []byte, v uint64) { h.Put(k, v) },
		get:         func(k []byte) { h.Get(k) },
		scan:        func(k []byte) { h.Scan(k, ycsb.ScanLength, func([]byte, uint64) bool { return true }) },
		stop:        s.StopTicker,
		loggedNodes: s.Stats().LoggedNodes.Load,
	}
}

func setupMode(b *testing.B, mode harness.Mode, fence time.Duration) benchTarget {
	switch mode {
	case harness.MT, harness.MTPlus:
		return setupTransient(b, mode)
	case harness.LOGGING:
		return setupDurable(b, true, fence)
	default:
		return setupDurable(b, false, fence)
	}
}

func runOps(b *testing.B, tgt benchTarget, w ycsb.Workload, d ycsb.Distribution) {
	g := ycsb.NewGenerator(w, d, benchTreeSize, 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		op := g.Next()
		switch op.Kind {
		case ycsb.OpPut:
			tgt.put(core.EncodeUint64(op.Key), uint64(i))
		case ycsb.OpGet:
			tgt.get(core.EncodeUint64(op.Key))
		case ycsb.OpScan:
			tgt.scan(core.EncodeUint64(op.Key))
		}
	}
	b.StopTimer()
	tgt.stop()
	b.ReportMetric(float64(b.N)/b.Elapsed().Seconds()/1e6, "Mops/s")
}

// BenchmarkFig2 measures MT, MT+ and INCLL across the four YCSB workloads
// and both key distributions (Figure 2).
func BenchmarkFig2(b *testing.B) {
	for _, mode := range []harness.Mode{harness.MT, harness.MTPlus, harness.INCLL} {
		for _, w := range []ycsb.Workload{ycsb.A, ycsb.B, ycsb.C, ycsb.E} {
			for _, d := range []ycsb.Distribution{ycsb.Uniform, ycsb.Zipfian} {
				b.Run(fmt.Sprintf("%s/%s/%s", mode, w, d), func(b *testing.B) {
					runOps(b, setupMode(b, mode, 0), w, d)
				})
			}
		}
	}
}

// BenchmarkFig3 measures INCLL under emulated NVM latency (Figure 3).
func BenchmarkFig3(b *testing.B) {
	for _, fence := range harness.FenceDelays {
		for _, d := range []ycsb.Distribution{ycsb.Uniform, ycsb.Zipfian} {
			b.Run(fmt.Sprintf("fence=%s/%s", fence, d), func(b *testing.B) {
				runOps(b, setupDurable(b, false, fence), ycsb.A, d)
			})
		}
	}
}

// BenchmarkFig4 measures MT+ vs INCLL with concurrent workers (Figure 4's
// thread axis; the full sweep is `incll-bench -fig 4`).
func BenchmarkFig4(b *testing.B) {
	for _, mode := range []harness.Mode{harness.MTPlus, harness.INCLL} {
		for _, threads := range []int{1, 2, 4} {
			b.Run(fmt.Sprintf("%s/threads=%d", mode, threads), func(b *testing.B) {
				r := harness.Run(harness.RunConfig{
					Mode: mode, Workload: ycsb.A, Dist: ycsb.Uniform,
					TreeSize: benchTreeSize, Threads: threads,
					OpsPerThread: 50_000, EpochInterval: benchInterval, Seed: 1,
				})
				b.ReportMetric(r.Throughput/1e6, "Mops/s")
				b.ReportMetric(0, "ns/op") // wall-clock measured inside the harness
			})
		}
	}
}

// BenchmarkFig5 measures MT+ vs INCLL across tree sizes (Figures 5 and 6).
func BenchmarkFig5(b *testing.B) {
	for _, mode := range []harness.Mode{harness.MTPlus, harness.INCLL} {
		for _, size := range []uint64{10_000, 100_000, 1_000_000} {
			b.Run(fmt.Sprintf("%s/size=%d", mode, size), func(b *testing.B) {
				r := harness.Run(harness.RunConfig{
					Mode: mode, Workload: ycsb.A, Dist: ycsb.Uniform,
					TreeSize: size, Threads: 1,
					OpsPerThread: 100_000, EpochInterval: benchInterval, Seed: 1,
				})
				b.ReportMetric(r.Throughput/1e6, "Mops/s")
				b.ReportMetric(0, "ns/op")
			})
		}
	}
}

// BenchmarkFig7 measures logged nodes per operation, LOGGING vs INCLL
// (Figure 7's metric).
func BenchmarkFig7(b *testing.B) {
	for _, mode := range []harness.Mode{harness.LOGGING, harness.INCLL} {
		for _, d := range []ycsb.Distribution{ycsb.Uniform, ycsb.Zipfian} {
			b.Run(fmt.Sprintf("%s/%s", mode, d), func(b *testing.B) {
				tgt := setupMode(b, mode, 0)
				before := tgt.loggedNodes()
				runOps(b, tgt, ycsb.A, d)
				b.ReportMetric(float64(tgt.loggedNodes()-before)/float64(b.N), "logged/op")
			})
		}
	}
}

// BenchmarkFig8 measures LOGGING vs INCLL under emulated NVM latency
// (Figure 8).
func BenchmarkFig8(b *testing.B) {
	for _, mode := range []harness.Mode{harness.LOGGING, harness.INCLL} {
		for _, fence := range []time.Duration{0, 500 * time.Nanosecond, time.Microsecond} {
			b.Run(fmt.Sprintf("%s/fence=%s", mode, fence), func(b *testing.B) {
				runOps(b, setupMode(b, mode, fence), ycsb.A, ycsb.Uniform)
			})
		}
	}
}

// BenchmarkShardScaling measures the sharded store's scale-out curve:
// YCSB-A throughput across shard counts and both key distributions, with
// the coordinated global checkpointer ticking. Uniform keys spread evenly,
// so throughput should grow with shards on a multi-core runner; zipfian
// shows how far hot keys cap the win (the hot shard stays contended).
func BenchmarkShardScaling(b *testing.B) {
	for _, shards := range []int{1, 2, 4, 8} {
		for _, d := range []ycsb.Distribution{ycsb.Uniform, ycsb.Zipfian} {
			b.Run(fmt.Sprintf("shards=%d/%s", shards, d), func(b *testing.B) {
				r := harness.Run(harness.RunConfig{
					Mode: harness.INCLL, Workload: ycsb.A, Dist: d,
					TreeSize: benchTreeSize, Threads: 8, Shards: shards,
					OpsPerThread: 50_000, EpochInterval: benchInterval, Seed: 1,
				})
				b.ReportMetric(r.Throughput/1e6, "Mops/s")
				b.ReportMetric(0, "ns/op") // wall-clock measured inside the harness
			})
		}
	}
}

// BenchmarkShardCheckpoint measures the coordinated global checkpoint cost
// across shard counts: the same dirty set, flushed by 1 vs N arenas.
func BenchmarkShardCheckpoint(b *testing.B) {
	for _, shards := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("shards=%d", shards), func(b *testing.B) {
			db, _ := incll.Open(incll.Options{Shards: shards, ArenaWords: 1 << 22})
			for i := uint64(0); i < benchTreeSize; i++ {
				db.Put(incll.Key(i), i)
			}
			g := ycsb.NewGenerator(ycsb.A, ycsb.Uniform, benchTreeSize, 1)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				b.StopTimer()
				for j := 0; j < 2000; j++ { // dirty one epoch's worth of lines
					op := g.Next()
					if op.Kind == ycsb.OpPut {
						db.Put(incll.Key(op.Key), op.Key)
					}
				}
				b.StartTimer()
				db.Checkpoint()
			}
		})
	}
}

// BenchmarkGlobalFlush measures the epoch-boundary flush (§6.2).
func BenchmarkGlobalFlush(b *testing.B) {
	db, _ := incll.Open(incll.Options{ArenaWords: 1 << 24})
	for i := uint64(0); i < benchTreeSize; i++ {
		db.Put(incll.Key(i), i)
	}
	g := ycsb.NewGenerator(ycsb.A, ycsb.Uniform, benchTreeSize, 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		for j := 0; j < 2000; j++ { // dirty one epoch's worth of lines
			op := g.Next()
			if op.Kind == ycsb.OpPut {
				db.Put(incll.Key(op.Key), op.Key)
			}
		}
		b.StartTimer()
		db.Checkpoint()
	}
}

// BenchmarkRecovery measures post-crash Open (§6.3: external-log replay
// plus header repair; node repair is lazy and excluded, as in the paper).
func BenchmarkRecovery(b *testing.B) {
	db, _ := incll.Open(incll.Options{ArenaWords: 1 << 25})
	for i := uint64(0); i < 1_000_000; i++ {
		db.Put(incll.Key(i), i)
	}
	db.Checkpoint()
	g := ycsb.NewGenerator(ycsb.A, ycsb.Uniform, 1_000_000, 1)
	for j := 0; j < 200_000; j++ { // a worst-case epoch of writes
		op := g.Next()
		if op.Kind == ycsb.OpPut {
			db.Put(incll.Key(op.Key), op.Key)
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		db.SimulateCrash(0.5, int64(i))
		b.StartTimer()
		db, _ = db.Reopen() // the measured recovery
	}
}
