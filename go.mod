module incll

go 1.24
